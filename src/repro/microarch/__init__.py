"""A microarchitecture activity/power simulator (the Wattch substitute).

The paper drives its Fig. 10/12 experiments with per-block power traces
of an Alpha EV6-like processor running ``gcc``, produced by
SimpleScalar + Wattch.  Neither tool (nor SPEC traces) is available
here, so this package provides the substitute described in DESIGN.md:

* :mod:`workload` -- synthetic, phase-structured instruction streams
  with controllable mix, locality, and branch behavior ("gcc-like",
  FP-intensive, memory-bound presets);
* :mod:`bpred`, :mod:`caches` -- functional branch predictor and cache
  hierarchy models, simulated on the instruction stream;
* :mod:`core` -- an interval-style out-of-order pipeline model that
  converts the stream + miss/misprediction events into per-cycle
  structure access counts;
* :mod:`energy` -- Wattch-style per-access energies plus leakage,
  mapped onto floorplan blocks;
* :mod:`simulator` -- ties everything together into a
  :class:`~repro.power.PowerTrace` sampled every N cycles (the paper
  samples every 10 kcycles, ~3.3 us).

Absolute IPC fidelity is not the goal; the produced traces match the
statistics the thermal experiments rely on (hot integer core, cool L2,
microsecond-scale burstiness, program phases).
"""

from .workload import (
    SyntheticWorkload,
    gcc_like_workload,
    fp_intensive_workload,
    memory_bound_workload,
    compression_workload,
    mixed_workload,
)
from .bpred import BimodalPredictor
from .caches import SetAssociativeCache, CacheHierarchy
from .core import PipelineConfig, IntervalCore, ActivityCounts
from .energy import EnergyModel, default_ev6_energy_model
from .simulator import MicroarchSimulator, simulate_power_trace
from .synthesis import TraceSynthesizer

__all__ = [
    "SyntheticWorkload",
    "gcc_like_workload",
    "fp_intensive_workload",
    "memory_bound_workload",
    "compression_workload",
    "mixed_workload",
    "BimodalPredictor",
    "SetAssociativeCache",
    "CacheHierarchy",
    "PipelineConfig",
    "IntervalCore",
    "ActivityCounts",
    "EnergyModel",
    "default_ev6_energy_model",
    "MicroarchSimulator",
    "simulate_power_trace",
    "TraceSynthesizer",
]
