"""Synthetic instruction streams with program-phase structure.

A workload is a sequence of *phases*; each phase fixes an instruction
mix, a working-set size, memory stride behavior, and branch
predictability, and contributes a number of instructions.  Streams are
generated lazily in chunks as flat numpy arrays (class codes, PCs,
memory addresses, branch outcomes), which the cache/predictor models
consume directly.

The ``gcc_like`` preset mimics the published character of SPEC gcc:
integer-dominated, moderately branchy, noticeable L1-D activity, very
little floating point -- which is what makes the integer register file
the EV6 hot spot in the paper's figures while the FP row stays cool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..errors import ConfigurationError

#: Instruction class codes (compact integers for numpy streams).
INT_ALU = 0
INT_MUL = 1
FP_ADD = 2
FP_MUL = 3
LOAD = 4
STORE = 5
BRANCH = 6

N_CLASSES = 7

CLASS_NAMES = {
    INT_ALU: "int_alu",
    INT_MUL: "int_mul",
    FP_ADD: "fp_add",
    FP_MUL: "fp_mul",
    LOAD: "load",
    STORE: "store",
    BRANCH: "branch",
}


@dataclass(frozen=True)
class Phase:
    """One program phase.

    Parameters
    ----------
    mix:
        Probability per instruction class (must sum to 1).
    instructions:
        Number of instructions contributed by this phase.
    working_set:
        Data working-set size in bytes (drives cache behavior).
    stride_fraction:
        Fraction of memory accesses that walk sequentially; the rest
        are uniform over the working set.
    branch_bias:
        Probability a conditional branch repeats its previous outcome
        (higher = more predictable).
    code_footprint:
        Static code size in bytes (drives I-cache behavior).
    """

    mix: Tuple[float, ...]
    instructions: int
    working_set: int = 1 << 20
    stride_fraction: float = 0.6
    branch_bias: float = 0.9
    code_footprint: int = 1 << 16
    hot_set: int = 32 << 10
    cold_fraction: float = 0.05
    n_hot_blocks: int = 256
    stride_region: int = 64 << 10

    def __post_init__(self) -> None:
        if len(self.mix) != N_CLASSES:
            raise ConfigurationError(f"mix needs {N_CLASSES} entries")
        if abs(sum(self.mix) - 1.0) > 1e-9:
            raise ConfigurationError("mix must sum to 1")
        if any(p < 0 for p in self.mix):
            raise ConfigurationError("mix probabilities must be >= 0")
        if self.instructions < 1:
            raise ConfigurationError("phase needs at least one instruction")
        if not 0.0 <= self.stride_fraction <= 1.0:
            raise ConfigurationError("stride_fraction must lie in [0, 1]")
        if not 0.0 <= self.branch_bias <= 1.0:
            raise ConfigurationError("branch_bias must lie in [0, 1]")
        if not 0.0 <= self.cold_fraction <= 1.0:
            raise ConfigurationError("cold_fraction must lie in [0, 1]")
        if self.hot_set < 8 or self.n_hot_blocks < 1:
            raise ConfigurationError("hot_set/n_hot_blocks too small")
        if self.stride_region < 8:
            raise ConfigurationError("stride_region too small")


@dataclass
class InstructionChunk:
    """A generated block of instructions as parallel arrays."""

    classes: np.ndarray      # int8 class codes
    pcs: np.ndarray          # int64 instruction addresses
    addresses: np.ndarray    # int64 memory addresses (0 for non-memory)
    taken: np.ndarray        # bool branch outcomes (False for non-branches)

    def __len__(self) -> int:
        return len(self.classes)


class SyntheticWorkload:
    """A phase sequence plus deterministic stream generation."""

    def __init__(self, phases: List[Phase], name: str, seed: int = 0) -> None:
        if not phases:
            raise ConfigurationError("workload needs at least one phase")
        self.phases = list(phases)
        self.name = name
        self.seed = int(seed)

    @property
    def total_instructions(self) -> int:
        """Instructions across all phases."""
        return sum(p.instructions for p in self.phases)

    def chunks(self, chunk_size: int = 65536) -> Iterator[Tuple[int, InstructionChunk]]:
        """Yield (phase_index, chunk) pairs across the whole workload."""
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        rng = np.random.default_rng(self.seed)
        for phase_index, phase in enumerate(self.phases):
            remaining = phase.instructions
            cursor = int(rng.integers(0, max(1, phase.working_set)))
            # The phase's hot loop structure: a fixed set of basic-block
            # entry points all jumps target (real code revisits the same
            # loops; this is what gives the I-cache its locality).
            hot_blocks = (
                rng.integers(
                    0, max(4, phase.code_footprint), size=phase.n_hot_blocks
                ) & ~np.int64(3)
            )
            while remaining > 0:
                n = min(chunk_size, remaining)
                chunk, cursor = _generate_chunk(
                    phase, n, rng, cursor, hot_blocks
                )
                yield phase_index, chunk
                remaining -= n

    def mix_summary(self) -> Dict[str, float]:
        """Instruction-weighted average mix over all phases."""
        total = self.total_instructions
        avg = np.zeros(N_CLASSES)
        for phase in self.phases:
            avg += np.asarray(phase.mix) * (phase.instructions / total)
        return {CLASS_NAMES[c]: float(avg[c]) for c in range(N_CLASSES)}


def _generate_chunk(
    phase: Phase,
    n: int,
    rng: np.random.Generator,
    cursor: int,
    hot_blocks: np.ndarray,
) -> Tuple[InstructionChunk, int]:
    classes = rng.choice(
        N_CLASSES, size=n, p=np.asarray(phase.mix)
    ).astype(np.int8)

    # PCs walk basic blocks: sequential 4-byte instructions; taken
    # branches jump to one of the phase's hot basic-block entry points.
    # Each *static* branch (identified by its PC) has a stable bias, so
    # a PC-indexed predictor can learn it -- mispredictions then track
    # (1 - branch_bias) as they do for real integer codes.
    pcs = np.zeros(n, dtype=np.int64)
    taken = np.zeros(n, dtype=bool)
    is_branch = classes == BRANCH
    outcomes = rng.random(n)
    pc = int(hot_blocks[int(rng.integers(0, len(hot_blocks)))])
    target_picks = rng.integers(0, len(hot_blocks), size=n)
    for i in range(n):
        pcs[i] = pc
        if is_branch[i]:
            # Static bias keyed on the branch PC: some branches are
            # almost-always-taken, others almost-never.
            if (pc >> 2) & 1:
                taken_prob = phase.branch_bias
            else:
                taken_prob = 1.0 - phase.branch_bias
            taken[i] = outcomes[i] < taken_prob
            if taken[i]:
                pc = int(hot_blocks[target_picks[i]])
                continue
        pc += 4

    # Memory addresses: a strided walk wrapping within a bounded reuse
    # region (real loops re-traverse the same arrays) for
    # stride_fraction of accesses; the rest hit a small hot region with
    # occasional cold excursions over the full working set.
    addresses = np.zeros(n, dtype=np.int64)
    is_mem = (classes == LOAD) | (classes == STORE)
    mem_indices = np.flatnonzero(is_mem)
    if mem_indices.size:
        strided = rng.random(mem_indices.size) < phase.stride_fraction
        cold = rng.random(mem_indices.size) < phase.cold_fraction
        hot_size = min(phase.hot_set, phase.working_set)
        stride_wrap = max(8, min(phase.stride_region, phase.working_set))
        hot_randoms = rng.integers(0, max(8, hot_size),
                                   size=mem_indices.size)
        cold_randoms = rng.integers(0, max(8, phase.working_set),
                                    size=mem_indices.size)
        addr = cursor % stride_wrap
        for k, idx in enumerate(mem_indices):
            if strided[k]:
                addr = (addr + 8) % stride_wrap
                addresses[idx] = addr
            elif cold[k]:
                addresses[idx] = cold_randoms[k]
            else:
                addresses[idx] = hot_randoms[k]
        cursor = addr
    return InstructionChunk(classes, pcs, addresses, taken), cursor


# --- presets --------------------------------------------------------------


def gcc_like_workload(
    instructions: int = 2_000_000, seed: int = 0
) -> SyntheticWorkload:
    """Integer-heavy, branchy, phase-alternating stream ("gcc-like")."""
    base = instructions // 4
    #       int_alu int_mul fp_add fp_mul load  store branch
    phases = [
        Phase((0.46, 0.02, 0.005, 0.005, 0.26, 0.10, 0.15),
              base, working_set=1 << 20, stride_fraction=0.55,
              branch_bias=0.93, code_footprint=1 << 18,
              cold_fraction=0.01),
        Phase((0.52, 0.03, 0.00, 0.00, 0.22, 0.08, 0.15),
              base, working_set=1 << 18, stride_fraction=0.75,
              branch_bias=0.96, code_footprint=1 << 16,
              cold_fraction=0.005),
        Phase((0.40, 0.02, 0.01, 0.01, 0.30, 0.12, 0.14),
              base, working_set=1 << 21, stride_fraction=0.5,
              branch_bias=0.92, code_footprint=1 << 18,
              cold_fraction=0.02),
        Phase((0.50, 0.02, 0.005, 0.005, 0.24, 0.09, 0.14),
              instructions - 3 * base, working_set=1 << 19,
              stride_fraction=0.65, branch_bias=0.94,
              code_footprint=1 << 17, cold_fraction=0.01),
    ]
    return SyntheticWorkload(phases, name="gcc_like", seed=seed)


def fp_intensive_workload(
    instructions: int = 2_000_000, seed: int = 1
) -> SyntheticWorkload:
    """FP-dominated stream (the FP row of the EV6 lights up instead)."""
    half = instructions // 2
    phases = [
        Phase((0.15, 0.01, 0.28, 0.22, 0.22, 0.08, 0.04),
              half, working_set=1 << 22, stride_fraction=0.9,
              branch_bias=0.97, code_footprint=1 << 15,
              stride_region=1 << 20, cold_fraction=0.02),
        Phase((0.18, 0.01, 0.24, 0.26, 0.20, 0.08, 0.03),
              instructions - half, working_set=1 << 23,
              stride_fraction=0.85, branch_bias=0.97,
              code_footprint=1 << 15, stride_region=1 << 20,
              cold_fraction=0.02),
    ]
    return SyntheticWorkload(phases, name="fp_intensive", seed=seed)


def compression_workload(
    instructions: int = 2_000_000, seed: int = 3
) -> SyntheticWorkload:
    """bzip2-flavored stream: integer-heavy, data-dependent branches,
    table-driven memory accesses over a mid-sized working set."""
    half = instructions // 2
    phases = [
        # modelling/encoding: branchy, hard-to-predict
        Phase((0.44, 0.02, 0.0, 0.0, 0.26, 0.10, 0.18),
              half, working_set=1 << 20, stride_fraction=0.35,
              branch_bias=0.80, code_footprint=1 << 15,
              hot_set=1 << 17, cold_fraction=0.02,
              stride_region=1 << 18),
        # block sorting: strided sweeps with good branches
        Phase((0.50, 0.02, 0.0, 0.0, 0.26, 0.08, 0.14),
              instructions - half, working_set=1 << 21,
              stride_fraction=0.8, branch_bias=0.95,
              code_footprint=1 << 14, cold_fraction=0.01,
              stride_region=1 << 19),
    ]
    return SyntheticWorkload(phases, name="compression", seed=seed)


def mixed_workload(
    instructions: int = 2_000_000, seed: int = 4
) -> SyntheticWorkload:
    """Alternating integer and FP program regions -- exercises the
    Fig. 9 scenario (hot spot migrating between IntReg and the FP row)
    under a realistic instruction stream."""
    quarter = instructions // 4
    int_mix = (0.50, 0.02, 0.005, 0.005, 0.24, 0.09, 0.14)
    fp_mix = (0.16, 0.01, 0.26, 0.24, 0.21, 0.08, 0.04)
    phases = [
        Phase(int_mix, quarter, working_set=1 << 19,
              stride_fraction=0.65, branch_bias=0.93,
              code_footprint=1 << 16, cold_fraction=0.01),
        Phase(fp_mix, quarter, working_set=1 << 21,
              stride_fraction=0.9, branch_bias=0.97,
              code_footprint=1 << 14, stride_region=1 << 19,
              cold_fraction=0.01),
        Phase(int_mix, quarter, working_set=1 << 19,
              stride_fraction=0.65, branch_bias=0.93,
              code_footprint=1 << 16, cold_fraction=0.01),
        Phase(fp_mix, instructions - 3 * quarter, working_set=1 << 21,
              stride_fraction=0.9, branch_bias=0.97,
              code_footprint=1 << 14, stride_region=1 << 19,
              cold_fraction=0.01),
    ]
    return SyntheticWorkload(phases, name="mixed", seed=seed)


def memory_bound_workload(
    instructions: int = 2_000_000, seed: int = 2
) -> SyntheticWorkload:
    """Pointer-chasing stream: large working set, little stride locality."""
    phases = [
        Phase((0.30, 0.01, 0.00, 0.00, 0.40, 0.14, 0.15),
              instructions, working_set=1 << 25, stride_fraction=0.1,
              branch_bias=0.80, code_footprint=1 << 17,
              stride_region=1 << 25, cold_fraction=0.5,
              hot_set=1 << 16),
    ]
    return SyntheticWorkload(phases, name="memory_bound", seed=seed)
