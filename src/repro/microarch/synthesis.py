"""Statistical extension of simulated power traces.

The functional pipeline/cache simulation costs roughly a second per
half-million instructions, but the paper's Fig. 12 thermal traces span
~130 ms of execution (hundreds of millions of cycles) with program
phases lasting milliseconds.  Simulating that span instruction by
instruction is neither necessary nor useful: what the thermal model
consumes is the *window-level power process* -- per-phase power levels,
within-phase burst noise, and millisecond-scale phase dwell times.

:class:`TraceSynthesizer` implements the classic sampled-simulation
recipe: it pools the functionally simulated power windows by program
phase, then synthesizes an arbitrarily long trace by walking the phase
sequence with configurable dwell times and bootstrap-resampling
contiguous bursts of windows from the matching pool.  Cross-block
correlation within a window (e.g. IntReg and IntExec pulsing together)
is preserved exactly, because whole window rows are resampled.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import PowerTraceError
from ..power.trace import PowerTrace


class TraceSynthesizer:
    """Extend a phase-labelled power trace to arbitrary durations.

    Parameters
    ----------
    trace:
        The functionally simulated window-level power trace.
    phase_labels:
        One label per trace sample assigning it to a program phase.
    seed:
        RNG seed; synthesis is deterministic given (trace, seed).
    """

    def __init__(
        self,
        trace: PowerTrace,
        phase_labels: Sequence[int],
        seed: int = 0,
    ) -> None:
        labels = np.asarray(phase_labels, dtype=int)
        if labels.shape != (trace.n_samples,):
            raise PowerTraceError(
                f"need one phase label per sample "
                f"({trace.n_samples} samples, {labels.size} labels)"
            )
        self.trace = trace
        self.labels = labels
        self.phase_ids = [int(p) for p in np.unique(labels)]
        self._pools = {
            p: np.flatnonzero(labels == p) for p in self.phase_ids
        }
        for p, pool in self._pools.items():
            if pool.size == 0:
                raise PowerTraceError(f"phase {p} has no samples")
        self._rng = np.random.default_rng(seed)

    def synthesize(
        self,
        duration: float,
        mean_dwell: float = 0.005,
        burst_windows: int = 8,
    ) -> PowerTrace:
        """Produce a trace of at least ``duration`` seconds.

        Phases are visited cyclically (programs revisit their phases);
        each visit dwells an exponentially distributed time with mean
        ``mean_dwell``.  Within a dwell, contiguous runs of
        ``burst_windows`` samples are copied from the phase's pool, so
        the sub-millisecond burst structure of the simulation survives.
        """
        if duration <= 0:
            raise PowerTraceError("duration must be positive")
        if mean_dwell <= 0 or burst_windows < 1:
            raise PowerTraceError("bad dwell/burst parameters")
        dt = self.trace.dt
        needed = int(np.ceil(duration / dt))
        rows: List[np.ndarray] = []
        produced = 0
        phase_cursor = 0
        while produced < needed:
            phase = self.phase_ids[phase_cursor % len(self.phase_ids)]
            phase_cursor += 1
            dwell = max(1, int(round(
                self._rng.exponential(mean_dwell) / dt
            )))
            pool = self._pools[phase]
            taken = 0
            while taken < dwell and produced < needed:
                run = min(burst_windows, dwell - taken, needed - produced)
                start = int(self._rng.integers(0, pool.size))
                picks = pool[(start + np.arange(run)) % pool.size]
                rows.append(self.trace.samples[picks])
                taken += run
                produced += run
        samples = np.vstack(rows)[:needed]
        return PowerTrace(self.trace.block_names, samples, dt)
