"""The top-level microarchitecture simulator: workload -> power trace.

Walks the synthetic instruction stream in chunks, feeding each chunk
through the branch predictor, the cache hierarchy and the interval
pipeline model, then bins the resulting activity into fixed cycle
windows (10 kcycles by default, the paper's Fig. 12 sampling) and
converts every window to a per-block power vector with the energy
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..floorplan.block import Floorplan
from ..power.trace import PowerTrace
from .bpred import BimodalPredictor
from .caches import CacheHierarchy
from .core import ActivityCounts, IntervalCore, PipelineConfig
from .energy import EnergyModel, default_ev6_energy_model
from .workload import BRANCH, LOAD, STORE, SyntheticWorkload


@dataclass
class SimulationSummary:
    """Aggregate statistics of one simulator run."""

    instructions: int
    cycles: float
    ipc: float
    branch_misprediction_rate: float
    l1i_miss_rate: float
    l1d_miss_rate: float
    l2_miss_rate: float


class MicroarchSimulator:
    """Workload-to-power simulation pipeline."""

    def __init__(
        self,
        floorplan: Floorplan,
        pipeline: Optional[PipelineConfig] = None,
        energy: Optional[EnergyModel] = None,
        hierarchy: Optional[CacheHierarchy] = None,
        predictor: Optional[BimodalPredictor] = None,
        window_cycles: int = 10_000,
        fetch_sample_stride: int = 4,
    ) -> None:
        if window_cycles < 100:
            raise ConfigurationError("window_cycles must be >= 100")
        if fetch_sample_stride < 1:
            raise ConfigurationError("fetch_sample_stride must be >= 1")
        self.floorplan = floorplan
        self.pipeline = pipeline or PipelineConfig()
        self.energy = energy or default_ev6_energy_model(floorplan)
        self.hierarchy = hierarchy or CacheHierarchy()
        self.predictor = predictor or BimodalPredictor()
        self.core = IntervalCore(self.pipeline)
        self.window_cycles = int(window_cycles)
        # The I-cache is probed once per fetch group, not per
        # instruction; sampling every `stride` PCs keeps the functional
        # simulation affordable while preserving miss behavior.
        self.fetch_sample_stride = int(fetch_sample_stride)
        self.last_summary: Optional[SimulationSummary] = None
        self.last_window_phases: Optional[np.ndarray] = None

    def run(self, workload: SyntheticWorkload,
            chunk_size: int = 16384) -> PowerTrace:
        """Simulate a workload and return its per-block power trace."""
        window_time = self.window_cycles / self.pipeline.clock_hz
        windows: List[np.ndarray] = []
        window_phases: List[int] = []
        phase_index = 0
        carry = ActivityCounts(cycles=0.0, instructions=0, accesses={})
        total_instr = 0
        total_cycles = 0.0
        mem_accesses = 0

        for phase_index, chunk in workload.chunks(chunk_size):
            sampled_pcs = chunk.pcs[:: self.fetch_sample_stride]
            is_mem = (chunk.classes == LOAD) | (chunk.classes == STORE)
            data_addresses = chunk.addresses[is_mem]
            stats = self.hierarchy.simulate_chunk(sampled_pcs, data_addresses)
            # Scale I-cache activity back to per-instruction-group rates.
            stats.l1i_accesses *= self.fetch_sample_stride
            stats.l1i_misses *= self.fetch_sample_stride
            is_branch = chunk.classes == BRANCH
            wrong = self.predictor.predict_and_update(
                chunk.pcs[is_branch], chunk.taken[is_branch]
            )
            activity = self.core.chunk_activity(chunk, stats, int(wrong.sum()))
            total_instr += activity.instructions
            total_cycles += activity.cycles
            mem_accesses += int(data_addresses.size)

            carry = carry + activity
            while carry.cycles >= self.window_cycles:
                fraction = self.window_cycles / carry.cycles
                window_part = carry.scaled(fraction)
                windows.append(
                    self.energy.block_power(window_part, window_time)
                )
                window_phases.append(phase_index)
                carry = carry + window_part.scaled(-1.0)
                # Guard against drift from the float split.
                carry.cycles = max(carry.cycles, 0.0)

        if carry.cycles > 0.5 * self.window_cycles or not windows:
            windows.append(
                self.energy.block_power(
                    carry, carry.cycles / self.pipeline.clock_hz
                    if carry.cycles else window_time
                )
            )
            window_phases.append(phase_index)

        self.last_summary = SimulationSummary(
            instructions=total_instr,
            cycles=total_cycles,
            ipc=total_instr / total_cycles if total_cycles else 0.0,
            branch_misprediction_rate=self.predictor.misprediction_rate,
            l1i_miss_rate=self.hierarchy.l1i.miss_rate,
            l1d_miss_rate=self.hierarchy.l1d.miss_rate,
            l2_miss_rate=self.hierarchy.l2.miss_rate,
        )
        samples = np.clip(np.vstack(windows), 0.0, None)
        self.last_window_phases = np.asarray(window_phases, dtype=int)
        return PowerTrace(self.floorplan.names, samples, window_time)


def simulate_power_trace(
    floorplan: Floorplan,
    workload: SyntheticWorkload,
    window_cycles: int = 10_000,
    **kwargs,
) -> PowerTrace:
    """One-call convenience: simulate ``workload`` on ``floorplan``."""
    simulator = MicroarchSimulator(
        floorplan, window_cycles=window_cycles, **kwargs
    )
    return simulator.run(workload)
