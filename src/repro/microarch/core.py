"""Interval-style out-of-order pipeline activity model.

Converts an instruction chunk plus its cache/branch events into (a) an
estimate of the cycles the chunk occupies and (b) per-structure access
counts.  The cycle estimate follows the interval-analysis tradition
(Karkhanis & Smith): a base issue rate bounded by the machine width and
an ILP efficiency factor, plus additive penalties for branch
mispredictions and cache misses with partial overlap factors.

This is deliberately not a cycle-accurate EV6; it produces the
statistics the power model needs (activity rates, burstiness, phase
structure) with honest microarchitectural mechanisms behind them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..errors import ConfigurationError
from .caches import HierarchyStats
from .workload import (
    BRANCH,
    FP_ADD,
    FP_MUL,
    INT_ALU,
    INT_MUL,
    LOAD,
    N_CLASSES,
    STORE,
    InstructionChunk,
)

#: Microarchitectural structures whose activity is counted.  The names
#: double as keys into the energy model's per-access table.
STRUCTURES = (
    "icache", "itb", "bpred", "int_map", "fp_map", "int_q", "fp_q",
    "int_reg", "fp_reg", "int_exec", "fp_add", "fp_mul", "ldst_q",
    "dcache", "dtb", "l2",
)


@dataclass(frozen=True)
class PipelineConfig:
    """Machine parameters of the modelled core (EV6-flavored defaults)."""

    width: int = 4
    ilp_efficiency: float = 0.55
    mispredict_penalty: float = 11.0
    l1_miss_latency: float = 12.0
    l2_miss_latency: float = 150.0
    l1d_overlap: float = 0.5
    l2_overlap: float = 0.3
    frontend_miss_overlap: float = 0.6
    clock_hz: float = 3.0e9

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigurationError("width must be >= 1")
        if not 0 < self.ilp_efficiency <= 1:
            raise ConfigurationError("ilp_efficiency must lie in (0, 1]")
        for name in ("l1d_overlap", "l2_overlap", "frontend_miss_overlap"):
            if not 0 <= getattr(self, name) <= 1:
                raise ConfigurationError(f"{name} must lie in [0, 1]")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")


@dataclass
class ActivityCounts:
    """Cycles and per-structure access counts for one simulated span."""

    cycles: float
    instructions: int
    accesses: Dict[str, float] = field(default_factory=dict)

    def __add__(self, other: "ActivityCounts") -> "ActivityCounts":
        merged = dict(self.accesses)
        for key, value in other.accesses.items():
            merged[key] = merged.get(key, 0.0) + value
        return ActivityCounts(
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            accesses=merged,
        )

    def scaled(self, fraction: float) -> "ActivityCounts":
        """A proportional slice (used to split spans across windows)."""
        return ActivityCounts(
            cycles=self.cycles * fraction,
            instructions=int(round(self.instructions * fraction)),
            accesses={k: v * fraction for k, v in self.accesses.items()},
        )

    @property
    def ipc(self) -> float:
        """Instructions per cycle over this span."""
        return self.instructions / self.cycles if self.cycles else 0.0


class IntervalCore:
    """The interval pipeline model: chunk + events -> activity."""

    def __init__(self, config: PipelineConfig = PipelineConfig()) -> None:
        self.config = config

    def chunk_activity(
        self,
        chunk: InstructionChunk,
        hierarchy: HierarchyStats,
        mispredictions: int,
    ) -> ActivityCounts:
        """Estimate cycles and structure accesses for one chunk."""
        cfg = self.config
        n = len(chunk)
        counts = np.bincount(chunk.classes, minlength=N_CLASSES)
        n_int = int(counts[INT_ALU] + counts[INT_MUL])
        n_fp = int(counts[FP_ADD] + counts[FP_MUL])
        n_load = int(counts[LOAD])
        n_store = int(counts[STORE])
        n_mem = n_load + n_store
        n_branch = int(counts[BRANCH])

        base_cycles = n / (cfg.width * cfg.ilp_efficiency)
        stall_cycles = (
            mispredictions * cfg.mispredict_penalty
            + hierarchy.l1d_misses * cfg.l1_miss_latency * (1 - cfg.l1d_overlap)
            + hierarchy.l2_misses * cfg.l2_miss_latency * (1 - cfg.l2_overlap)
            + hierarchy.l1i_misses * cfg.l1_miss_latency
            * (1 - cfg.frontend_miss_overlap)
        )
        cycles = base_cycles + stall_cycles

        fetch_groups = n / cfg.width
        accesses = {
            "icache": float(hierarchy.l1i_accesses),
            "itb": fetch_groups,
            "bpred": fetch_groups + n_branch,
            # Rename: every instruction maps; FP instructions hit the FP
            # map, everything else the integer map.
            "int_map": float(n - n_fp),
            "fp_map": float(n_fp),
            # Issue queues: insert + wakeup + select per instruction.
            "int_q": 2.0 * (n_int + n_mem + n_branch),
            "fp_q": 2.0 * n_fp,
            # Register files: ~2 reads + 1 write per instruction.
            "int_reg": 3.0 * (n_int + n_mem + n_branch),
            "fp_reg": 3.0 * n_fp,
            # Execution: ALUs also compute memory addresses.
            "int_exec": float(n_int + n_mem + n_branch),
            "fp_add": float(counts[FP_ADD]),
            "fp_mul": float(counts[FP_MUL]),
            "ldst_q": float(n_mem),
            "dcache": float(hierarchy.l1d_accesses),
            "dtb": float(n_mem),
            "l2": float(hierarchy.l2_accesses),
        }
        return ActivityCounts(cycles=cycles, instructions=n, accesses=accesses)
