"""Branch predictor models.

A bimodal (2-bit saturating counter) predictor indexed by PC -- the
classic baseline and close to the EV6's local history component for
this purpose.  Prediction is vectorized per chunk: counters are read
for all branches, then updated sequentially per static branch (the
per-PC update order within a chunk matters only for aliased PCs, which
the sequential pass handles exactly).
"""

from __future__ import annotations


import numpy as np

from ..errors import ConfigurationError


class BimodalPredictor:
    """2-bit saturating-counter branch predictor."""

    def __init__(self, table_bits: int = 12) -> None:
        if not 4 <= table_bits <= 24:
            raise ConfigurationError("table_bits must lie in [4, 24]")
        self.table_bits = int(table_bits)
        self.size = 1 << self.table_bits
        # Counters start weakly taken (2 on the 0..3 scale).
        self.counters = np.full(self.size, 2, dtype=np.int8)
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pcs: np.ndarray) -> np.ndarray:
        return (pcs >> 2) & (self.size - 1)

    def predict_and_update(
        self, pcs: np.ndarray, taken: np.ndarray
    ) -> np.ndarray:
        """Predict a chunk of branches and train the counters.

        Returns a boolean array: True where the prediction was wrong.
        """
        pcs = np.asarray(pcs, dtype=np.int64)
        taken = np.asarray(taken, dtype=bool)
        if pcs.shape != taken.shape:
            raise ConfigurationError("pcs and outcomes must align")
        indices = self._index(pcs)
        wrong = np.zeros(pcs.shape, dtype=bool)
        counters = self.counters
        for i in range(pcs.size):
            idx = indices[i]
            predicted_taken = counters[idx] >= 2
            actual = taken[i]
            wrong[i] = predicted_taken != actual
            if actual:
                if counters[idx] < 3:
                    counters[idx] += 1
            else:
                if counters[idx] > 0:
                    counters[idx] -= 1
        self.predictions += int(pcs.size)
        self.mispredictions += int(wrong.sum())
        return wrong

    @property
    def misprediction_rate(self) -> float:
        """Cumulative misprediction rate over everything predicted."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def reset_statistics(self) -> None:
        """Zero the counters' statistics (state is kept)."""
        self.predictions = 0
        self.mispredictions = 0
