"""Wattch-style energy model: activity counts -> per-block power.

Each microarchitectural structure has a per-access energy; each
floorplan block additionally leaks in proportion to its area, with an
optional exponential temperature dependence (the leakage feedback the
paper's Conclusions flag as a complication for reconciling packages).

Per-access energies are calibrated so the ``gcc_like`` workload on the
EV6 floorplan lands near the published HotSpot/Wattch example powers
for gcc (hot IntReg/IntExec/Dcache, warm Icache/Bpred/LdStQ, idle FP
row, a few Watts of L2) -- the spatial power structure every Fig. 10-12
conclusion rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from ..errors import ConfigurationError
from ..floorplan.block import Floorplan
from .core import STRUCTURES, ActivityCounts

#: Default mapping from structure names to EV6 floorplan blocks.
DEFAULT_EV6_BLOCK_MAP: Dict[str, str] = {
    "icache": "Icache",
    "itb": "ITB",
    "bpred": "Bpred",
    "int_map": "IntMap",
    "fp_map": "FPMap",
    "int_q": "IntQ",
    "fp_q": "FPQ",
    "int_reg": "IntReg",
    "fp_reg": "FPReg",
    "int_exec": "IntExec",
    "fp_add": "FPAdd",
    "fp_mul": "FPMul",
    "ldst_q": "LdStQ",
    "dcache": "Dcache",
    "dtb": "DTB",
    "l2": "L2",
}

#: Per-access energies in Joules, EV6-class structures at a ~3 GHz
#: process point.  Calibrated (see module docstring).
DEFAULT_ACCESS_ENERGY: Dict[str, float] = {
    "icache": 1.72e-9,
    "itb": 0.42e-9,
    "bpred": 0.55e-9,
    "int_map": 0.24e-9,
    "fp_map": 1.02e-9,
    "int_q": 0.12e-9,
    "fp_q": 0.51e-9,
    "int_reg": 0.53e-9,
    "fp_reg": 0.17e-9,
    "int_exec": 1.00e-9,
    "fp_add": 1.01e-9,
    "fp_mul": 1.02e-9,
    "ldst_q": 2.66e-9,
    "dcache": 11.5e-9,
    "dtb": 0.71e-9,
    "l2": 24.2e-9,
}


@dataclass
class EnergyModel:
    """Converts activity windows into per-block power vectors.

    Parameters
    ----------
    floorplan:
        Target floorplan; structure power lands on its blocks.
    access_energy:
        Joules per access for each structure.
    block_map:
        structure -> block name.  Structures mapped to ``"L2"`` are
        split over all blocks whose name starts with ``L2`` in
        proportion to area (the EV6 floorplan has three L2 banks).
    leakage_density:
        Idle leakage per unit area, W/m^2, applied to every block.
    leakage_beta:
        Optional exponential temperature coefficient (1/K): leakage at
        temperature T is scaled by ``exp(beta * (T - T_ref))``.
    t_ref:
        Reference temperature for the leakage law, Kelvin.
    """

    floorplan: Floorplan
    access_energy: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_ACCESS_ENERGY)
    )
    block_map: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_EV6_BLOCK_MAP)
    )
    leakage_density: float = 2.0e4  # 0.02 W/mm^2
    leakage_beta: float = 0.0
    t_ref: float = 318.15

    def __post_init__(self) -> None:
        missing = set(STRUCTURES) - set(self.access_energy)
        if missing:
            raise ConfigurationError(
                f"access_energy missing structures: {sorted(missing)}"
            )
        if self.leakage_density < 0:
            raise ConfigurationError("leakage_density must be >= 0")
        self._weights = self._build_weights()

    def _build_weights(self) -> np.ndarray:
        """(n_structures, n_blocks) distribution matrix."""
        n_blocks = len(self.floorplan)
        weights = np.zeros((len(STRUCTURES), n_blocks))
        areas = self.floorplan.areas()
        for s_idx, structure in enumerate(STRUCTURES):
            target = self.block_map.get(structure)
            if target is None:
                raise ConfigurationError(
                    f"structure {structure!r} has no block mapping"
                )
            if target in self.floorplan:
                weights[s_idx, self.floorplan.index_of(target)] = 1.0
                continue
            # Area-proportional split over a bank group (e.g. "L2" over
            # L2_left / L2 / L2_right).
            group = [
                i for i, name in enumerate(self.floorplan.names)
                if name.startswith(target)
            ]
            if not group:
                raise ConfigurationError(
                    f"block {target!r} (for structure {structure!r}) not in "
                    f"floorplan {self.floorplan.name!r}"
                )
            group_areas = areas[group]
            weights[s_idx, group] = group_areas / group_areas.sum()
        return weights

    # ------------------------------------------------------------------

    def dynamic_power(self, activity: ActivityCounts, window_time: float) -> np.ndarray:
        """Per-block dynamic power (W) for one activity window."""
        if window_time <= 0:
            raise ConfigurationError("window_time must be positive")
        energy = np.array([
            self.access_energy[s] * activity.accesses.get(s, 0.0)
            for s in STRUCTURES
        ])
        return (energy @ self._weights) / window_time

    def leakage_power(
        self, block_temps: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-block leakage power (W), optionally temperature-scaled."""
        base = self.leakage_density * self.floorplan.areas()
        if block_temps is None or self.leakage_beta == 0.0:  # repro-ok: float-equality; exact zero = scaling off
            return base
        block_temps = np.asarray(block_temps, dtype=float)
        return base * np.exp(self.leakage_beta * (block_temps - self.t_ref))

    def block_power(
        self,
        activity: ActivityCounts,
        window_time: float,
        block_temps: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Dynamic + leakage per-block power for one window."""
        return self.dynamic_power(activity, window_time) + self.leakage_power(
            block_temps
        )


def default_ev6_energy_model(floorplan: Floorplan, **overrides) -> EnergyModel:
    """The calibrated EV6 energy model used by the paper experiments."""
    return EnergyModel(floorplan=floorplan, **overrides)
