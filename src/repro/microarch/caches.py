"""Functional cache models.

Set-associative caches with true-LRU replacement, simulated on address
streams.  The hierarchy mirrors the EV6: split 64 KB L1 I/D caches
backed by a unified L2.  Only hit/miss behavior is modelled (no data),
which is all the activity/power model needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError


class SetAssociativeCache:
    """A set-associative cache with LRU replacement.

    Tags are stored per set in recency order (index 0 = most recent),
    so a lookup is a scan of at most ``ways`` entries and an update is
    a list rotation -- simple and adequate for the stream sizes the
    simulator uses.
    """

    def __init__(
        self, size_bytes: int, line_bytes: int, ways: int, name: str = "cache"
    ) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ConfigurationError("cache geometry must be positive")
        n_lines = size_bytes // line_bytes
        if n_lines % ways:
            raise ConfigurationError("lines must divide evenly into ways")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = n_lines // ways
        if self.n_sets & (self.n_sets - 1):
            raise ConfigurationError("set count must be a power of two")
        self._set_mask = self.n_sets - 1
        self._line_shift = int(np.log2(line_bytes))
        if (1 << self._line_shift) != line_bytes:
            raise ConfigurationError("line size must be a power of two")
        # recency-ordered tag list per set; -1 = invalid.
        self._tags = np.full((self.n_sets, ways), -1, dtype=np.int64)
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one address; returns True on hit (and updates LRU)."""
        line = address >> self._line_shift
        set_index = line & self._set_mask
        tag = line >> int(np.log2(self.n_sets)) if self.n_sets > 1 else line
        row = self._tags[set_index]
        self.accesses += 1
        for way in range(self.ways):
            if row[way] == tag:
                if way:
                    row[1:way + 1] = row[0:way]
                    row[0] = tag
                return True
        # miss: evict LRU (last), insert MRU (first)
        row[1:] = row[:-1]
        row[0] = tag
        self.misses += 1
        return False

    def access_block(self, addresses: np.ndarray) -> np.ndarray:
        """Access a sequence of addresses; returns per-access hit flags."""
        addresses = np.asarray(addresses, dtype=np.int64)
        hits = np.empty(addresses.shape, dtype=bool)
        for i, address in enumerate(addresses):
            hits[i] = self.access(int(address))
        return hits

    @property
    def miss_rate(self) -> float:
        """Cumulative miss rate."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_statistics(self) -> None:
        """Zero the counters (contents are kept warm)."""
        self.accesses = 0
        self.misses = 0


@dataclass
class HierarchyStats:
    """Per-level access/miss counts for one simulated chunk."""

    l1i_accesses: int
    l1i_misses: int
    l1d_accesses: int
    l1d_misses: int
    l2_accesses: int
    l2_misses: int


class CacheHierarchy:
    """EV6-like hierarchy: split L1 I/D, unified L2."""

    def __init__(
        self,
        l1i: Tuple[int, int, int] = (64 * 1024, 64, 2),
        l1d: Tuple[int, int, int] = (64 * 1024, 64, 2),
        l2: Tuple[int, int, int] = (2 * 1024 * 1024, 64, 8),
    ) -> None:
        self.l1i = SetAssociativeCache(*l1i, name="l1i")
        self.l1d = SetAssociativeCache(*l1d, name="l1d")
        self.l2 = SetAssociativeCache(*l2, name="l2")

    def simulate_chunk(
        self,
        pcs: np.ndarray,
        data_addresses: np.ndarray,
    ) -> HierarchyStats:
        """Run instruction fetches and data accesses through the levels.

        ``pcs`` are sampled fetch addresses, ``data_addresses`` the
        chunk's load/store addresses.  L1 misses are forwarded to L2;
        L2 misses stand for DRAM traffic.
        """
        i_hits = self.l1i.access_block(np.asarray(pcs, dtype=np.int64))
        i_misses = np.flatnonzero(~i_hits)
        d_hits = self.l1d.access_block(np.asarray(data_addresses, np.int64))
        d_misses = np.flatnonzero(~d_hits)
        l2_accesses = 0
        l2_misses = 0
        for idx in i_misses:
            l2_accesses += 1
            if not self.l2.access(int(pcs[idx])):
                l2_misses += 1
        for idx in d_misses:
            l2_accesses += 1
            if not self.l2.access(int(data_addresses[idx])):
                l2_misses += 1
        return HierarchyStats(
            l1i_accesses=int(len(pcs)),
            l1i_misses=int(i_misses.size),
            l1d_accesses=int(len(data_addresses)),
            l1d_misses=int(d_misses.size),
            l2_accesses=l2_accesses,
            l2_misses=l2_misses,
        )
