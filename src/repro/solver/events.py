"""Piecewise-constant power schedules for transient experiments.

The paper's transient workloads are piecewise constant: a 6 s step on
one block (Fig. 6), a 15 ms-on / 85 ms-off pulse train (Fig. 8), a
power hand-off between IntReg and FPMap at 10 ms (Fig. 9), and the
10 kcycle-sampled simulator traces of Fig. 12.  This module provides a
schedule container plus an integrator that steps through the segments
with a single reused factorization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..errors import PowerTraceError, SolverError
from ..rcmodel.network import ThermalNetwork
from .transient import TransientResult, _STEPPERS


@dataclass(frozen=True)
class PiecewiseConstantSchedule:
    """A node-power schedule: power vector i applies on [t_i, t_{i+1}).

    ``boundaries`` has one more entry than ``powers`` and must start at
    0.  After the last boundary the final power persists.
    """

    boundaries: Tuple[float, ...]
    powers: Tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.powers) + 1:
            raise PowerTraceError(
                "need len(boundaries) == len(powers) + 1 "
                f"(got {len(self.boundaries)} and {len(self.powers)})"
            )
        if abs(self.boundaries[0]) > 1e-15:
            raise PowerTraceError("schedule must start at t = 0")
        diffs = np.diff(self.boundaries)
        if np.any(diffs <= 0):
            raise PowerTraceError("boundaries must be strictly increasing")

    @classmethod
    def from_segments(
        cls, segments: Sequence[Tuple[float, np.ndarray]]
    ) -> "PiecewiseConstantSchedule":
        """Build from (duration, power_vector) pairs."""
        if not segments:
            raise PowerTraceError("schedule needs at least one segment")
        boundaries = [0.0]
        powers: List[np.ndarray] = []
        for duration, power in segments:
            if duration <= 0:
                raise PowerTraceError("segment durations must be positive")
            boundaries.append(boundaries[-1] + float(duration))
            powers.append(np.asarray(power, dtype=float))
        return cls(tuple(boundaries), tuple(powers))

    @property
    def t_end(self) -> float:
        """End of the defined schedule, seconds."""
        return self.boundaries[-1]

    def power_at(self, time: float) -> np.ndarray:
        """Power vector in effect at ``time``."""
        index = int(np.searchsorted(self.boundaries, time, side="right")) - 1
        index = min(max(index, 0), len(self.powers) - 1)
        return self.powers[index]

    def repeated(self, cycles: int) -> "PiecewiseConstantSchedule":
        """The schedule repeated ``cycles`` times back to back."""
        if cycles < 1:
            raise PowerTraceError("cycles must be >= 1")
        period = self.t_end
        boundaries = [0.0]
        powers: List[np.ndarray] = []
        for cycle in range(cycles):
            offset = cycle * period
            for i, power in enumerate(self.powers):
                boundaries.append(offset + self.boundaries[i + 1])
                powers.append(power)
        return PiecewiseConstantSchedule(tuple(boundaries), tuple(powers))

    def time_average(self) -> np.ndarray:
        """Duration-weighted average power vector over the schedule.

        The paper uses exactly this to pick the initial condition for
        the Fig. 8 oscillation study: solve the steady state under the
        average power of the periodic trace.
        """
        durations = np.diff(self.boundaries)
        stacked = np.vstack(self.powers)
        return (durations[:, None] * stacked).sum(axis=0) / durations.sum()


def simulate_schedule(
    network: ThermalNetwork,
    schedule: PiecewiseConstantSchedule,
    dt: float,
    x0: Optional[np.ndarray] = None,
    method: str = "trapezoidal",
    record_every: int = 1,
    projector: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    backend: Optional[str] = None,
) -> TransientResult:
    """Integrate through a piecewise-constant schedule.

    Each segment is stepped with the shared factorized stepper; segment
    boundaries are always hit exactly (the last step of a segment is
    shortened if needed by inserting a dedicated small-step stepper, but
    in practice experiments choose ``dt`` dividing segment lengths).
    """
    try:
        stepper_cls = _STEPPERS[method]
    except KeyError:
        raise SolverError(
            f"unknown method {method!r}; pick from {sorted(_STEPPERS)}"
        ) from None
    stepper = stepper_cls(network, dt, backend=backend)
    short_steppers = {}

    x = np.zeros(network.n_nodes) if x0 is None else np.asarray(x0, float).copy()
    if x.shape != (network.n_nodes,):
        raise SolverError(f"x0 has shape {x.shape}, expected ({network.n_nodes},)")

    def observe(state: np.ndarray) -> np.ndarray:
        return projector(state) if projector is not None else state.copy()

    times: List[float] = [0.0]
    records: List[np.ndarray] = [observe(x)]
    now = 0.0
    step_counter = 0
    with obs.span("solver.transient.schedule", method=method, dt=dt,
                  n_segments=len(schedule.powers), n_nodes=network.n_nodes):
        for seg_index, power in enumerate(schedule.powers):
            seg_end = schedule.boundaries[seg_index + 1]
            while now < seg_end - 1e-12:
                remaining = seg_end - now
                if remaining >= dt - 1e-12:
                    x = stepper.step(x, power)
                    now += dt
                else:
                    key = round(remaining, 15)
                    if key not in short_steppers:
                        short_steppers[key] = stepper_cls(
                            network, remaining, backend=backend
                        )
                    x = short_steppers[key].step(x, power)
                    now = seg_end
                step_counter += 1
                if step_counter % record_every == 0 or now >= seg_end - 1e-12:
                    times.append(now)
                    records.append(observe(x))
    return TransientResult(times=np.asarray(times), states=np.vstack(records))
