"""Batched multi-scenario transient integration.

The paper's transient studies — the four oil-flow directions, the DTM
policy sweeps of Sec. 5.1, sensor-placement ensembles, the Fig. 12
trace runs — all integrate the *same* RC network under many power
inputs.  Serial integration pays K factorizations and K Python
stepping loops for what is mathematically one factorization applied to
K right-hand sides.  This module carries the K scenario states as an
``(n_nodes, K)`` matrix and advances every column through one cached
LU factor per step: SuperLU solves a 2-D right-hand side column by
column with exactly the serial operation order, so **each column is
bitwise identical to running that scenario alone** — the batch changes
the cost, never the numbers.

Two entry points cover the two serial integrators:

* :func:`batched_transient_simulate` mirrors
  :func:`~repro.solver.transient.transient_simulate` (fixed ``dt``
  grid, exact final partial step).  Piecewise-constant schedules take
  a trace-driven fast path: segment powers are pre-stacked into
  arrays and gathered for whole blocks of steps at once instead of
  calling ``power_at(t)`` per scenario per step.
* :func:`batched_simulate_schedules` mirrors
  :func:`~repro.solver.events.simulate_schedule` (segment walking with
  short-step insertion) for K schedules sharing one boundary grid —
  the shape of a same-model campaign group (e.g. a Fig. 12 seed
  ensemble).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from .. import units
from ..errors import SolverError
from ..rcmodel.network import ThermalNetwork
from .events import PiecewiseConstantSchedule
from .transient import (
    TransientResult,
    _ImplicitStepper,
    plan_fixed_steps,
    stepper_class,
)

#: A scenario's power source: constant node vector, callable ``p(t)``,
#: or a piecewise-constant schedule (the fast path).
BatchPowerInput = Union[
    np.ndarray, Callable[[float], np.ndarray], PiecewiseConstantSchedule
]

Projector = Callable[[np.ndarray], np.ndarray]

_BATCH_RUNS = obs.metrics().counter("solver.batched.runs")
_BATCH_SCENARIOS = obs.metrics().counter("solver.batched.scenarios")
_BATCH_STEPS = obs.metrics().counter("solver.batched.steps")

#: Steps materialized per block on the trace fast path.  Bounds the
#: power buffer at ``block × n_nodes × K`` floats while keeping the
#: Python per-step overhead amortized over whole-block array gathers.
_BLOCK_STEPS = 64


@dataclass
class BatchScenario:
    """One column of a batched integration.

    ``power`` is a constant node vector, a callable ``p(t)``, or a
    :class:`~repro.solver.events.PiecewiseConstantSchedule`; ``x0`` is
    the column's initial rise state (``None`` = ambient); ``tag``
    labels the column in the result (defaults to ``"s<k>"``).
    """

    power: BatchPowerInput
    x0: Optional[np.ndarray] = None
    tag: str = ""


@dataclass
class BatchedTransientResult:
    """Recorded trajectories of a batched transient simulation.

    ``states`` has shape ``(n_records, n_observed, n_scenarios)``:
    axis 0 walks the recorded instants, axis 1 the observed components
    (projector outputs or full node rises), axis 2 the scenarios.
    """

    times: np.ndarray
    states: np.ndarray
    tags: Tuple[str, ...]

    @property
    def n_scenarios(self) -> int:
        """Number of scenario columns."""
        return self.states.shape[2]

    def index_of(self, tag: str) -> int:
        """Column index of the scenario tagged ``tag``."""
        try:
            return self.tags.index(tag)
        except ValueError:
            raise SolverError(
                f"no scenario tagged {tag!r}; tags: {list(self.tags)}"
            ) from None

    def scenario(self, key: Union[int, str]) -> TransientResult:
        """One column's trajectory as a plain :class:`TransientResult`."""
        index = key if isinstance(key, int) else self.index_of(key)
        return TransientResult(
            times=self.times,
            states=np.ascontiguousarray(self.states[:, :, index]),
        )


class _PowerColumn:
    """Pre-resolved power source for one scenario column."""

    def block(self, times: np.ndarray) -> np.ndarray:
        """Power vectors at ``times``, shape ``(len(times), n_nodes)``."""
        raise NotImplementedError


class _ConstantColumn(_PowerColumn):
    def __init__(self, vector: np.ndarray, n_nodes: int) -> None:
        self._vector = np.asarray(vector, dtype=float)
        if self._vector.shape != (n_nodes,):
            raise SolverError(
                f"power vector has shape {self._vector.shape}, "
                f"expected ({n_nodes},)"
            )

    def block(self, times: np.ndarray) -> np.ndarray:
        return np.broadcast_to(self._vector, (len(times), len(self._vector)))


class _ScheduleColumn(_PowerColumn):
    """The fast path: segment powers stacked once, gathered per block."""

    def __init__(self, schedule: PiecewiseConstantSchedule, n_nodes: int) -> None:
        self._stacked = np.vstack(schedule.powers)
        if self._stacked.shape[1] != n_nodes:
            raise SolverError(
                f"schedule powers have {self._stacked.shape[1]} nodes, "
                f"expected {n_nodes}"
            )
        self._boundaries = np.asarray(schedule.boundaries, dtype=float)

    def block(self, times: np.ndarray) -> np.ndarray:
        # same segment-selection rule as PiecewiseConstantSchedule
        # .power_at: side="right" minus one, clipped into range
        index = np.searchsorted(self._boundaries, times, side="right") - 1
        np.clip(index, 0, len(self._stacked) - 1, out=index)
        return self._stacked[index]


class _CallableColumn(_PowerColumn):
    def __init__(self, fn: Callable[[float], np.ndarray], n_nodes: int) -> None:
        self._fn = fn
        self._n_nodes = n_nodes

    def block(self, times: np.ndarray) -> np.ndarray:
        out = np.empty((len(times), self._n_nodes))
        for j, t in enumerate(times):
            p = np.asarray(self._fn(float(t)), dtype=float)
            if p.shape != (self._n_nodes,):
                raise SolverError(
                    f"power callable returned shape {p.shape}, "
                    f"expected ({self._n_nodes},)"
                )
            out[j] = p
        return out


def _column_for(power: BatchPowerInput, n_nodes: int) -> _PowerColumn:
    if isinstance(power, PiecewiseConstantSchedule):
        return _ScheduleColumn(power, n_nodes)
    if callable(power):
        return _CallableColumn(power, n_nodes)
    return _ConstantColumn(np.asarray(power, dtype=float), n_nodes)


def _resolve_tags(
    labels: Sequence[str], count: int
) -> Tuple[str, ...]:
    tags = tuple(
        label if label else f"s{k}" for k, label in enumerate(labels)
    )
    if len(tags) != count:
        raise SolverError(f"{len(tags)} tags for {count} scenarios")
    if len(set(tags)) != len(tags):
        dupes = sorted({t for t in tags if tags.count(t) > 1})
        raise SolverError(f"duplicate scenario tags: {dupes}")
    return tags


def _initial_states(
    x0s: Sequence[Optional[np.ndarray]], n_nodes: int
) -> Annotated[np.ndarray, units.array_shape("n_nodes", "K")]:
    x = np.zeros((n_nodes, len(x0s)))
    for k, x0 in enumerate(x0s):
        if x0 is None:
            continue
        column = np.asarray(x0, dtype=float)
        if column.shape != (n_nodes,):
            raise SolverError(
                f"x0 of scenario {k} has shape {column.shape}, "
                f"expected ({n_nodes},)"
            )
        x[:, k] = column
    return x


def _make_observer(
    projector: Optional[Projector], n_scenarios: int
) -> Callable[[np.ndarray], np.ndarray]:
    def observe(state: np.ndarray) -> np.ndarray:
        if projector is None:
            return state.copy()
        # apply per column on a contiguous copy so the projector sees
        # exactly what the serial path hands it
        columns = [
            np.atleast_1d(np.asarray(
                projector(np.ascontiguousarray(state[:, k])), dtype=float
            ))
            for k in range(n_scenarios)
        ]
        return np.stack(columns, axis=-1)

    return observe


def _materialize(
    columns: Sequence[_PowerColumn], times: np.ndarray, n_nodes: int
) -> Annotated[np.ndarray, units.array_shape("n_times", "K", "n_nodes")]:
    """Power tensor at ``times``: shape ``(len(times), K, n_nodes)``.

    Scenario-major layout so each column's block lands as contiguous
    rows; step ``j``'s ``(n_nodes, K)`` power matrix is the transposed
    view ``out[j].T`` (elementwise consumers are layout-agnostic).
    """
    out = np.empty((len(times), len(columns), n_nodes))
    for k, column in enumerate(columns):
        out[:, k, :] = column.block(times)
    return out


def batched_transient_simulate(
    network: ThermalNetwork,
    scenarios: Sequence[BatchScenario],
    t_end: float,
    dt: float,
    method: str = "trapezoidal",
    record_every: int = 1,
    projector: Optional[Projector] = None,
    backend: Optional[str] = None,
) -> BatchedTransientResult:
    """Integrate K scenarios on one network in lockstep.

    Mirrors :func:`~repro.solver.transient.transient_simulate` exactly
    — same step grid, same exact final partial step when ``dt`` does
    not divide ``t_end``, same recording rule — so column ``k`` of the
    result is bitwise identical to the serial call with
    ``scenarios[k]``'s power and ``x0``.  One LU factorization (per
    stepper) serves all K columns, and piecewise-constant schedules
    are materialized block-wise instead of evaluated per step.

    The bitwise guarantee holds for ``bitwise=True`` backends (the
    default ``superlu-serial``); tolerance backends agree with their
    serial counterparts within the backend's documented rtol.
    """
    if not scenarios:
        raise SolverError("need at least one scenario")
    if record_every < 1:
        raise SolverError("record_every must be >= 1")
    stepper_cls = stepper_class(method)
    n_full, dt_final = plan_fixed_steps(t_end, dt)
    n_nodes = network.n_nodes
    n_scenarios = len(scenarios)
    tags = _resolve_tags([sc.tag for sc in scenarios], n_scenarios)
    columns = [_column_for(sc.power, n_nodes) for sc in scenarios]
    x = _initial_states([sc.x0 for sc in scenarios], n_nodes)
    observe = _make_observer(projector, n_scenarios)

    stepper: _ImplicitStepper = stepper_cls(network, dt, backend=backend)
    n_steps = n_full + (1 if dt_final is not None else 0)
    times: List[float] = [0.0]
    records: List[np.ndarray] = [observe(x)]
    p_prev = _materialize(columns, np.zeros(1), n_nodes)[0]
    with obs.span("solver.batched.simulate", method=method,
                  n_steps=n_steps, dt=dt, n_nodes=n_nodes,
                  n_scenarios=n_scenarios):
        for start in range(1, n_full + 1, _BLOCK_STEPS):
            stop = min(start + _BLOCK_STEPS - 1, n_full)
            step_times = np.arange(start, stop + 1, dtype=float) * dt
            p_block = _materialize(columns, step_times, n_nodes)
            # the method's per-step power term, one vectorized pass per
            # block (elementwise, so bitwise equal to per-step compute)
            p_from = np.concatenate((p_prev[None], p_block[:-1]), axis=0)
            p_eff = stepper.effective_power(p_from, p_block)
            for j in range(stop - start + 1):
                step_index = start + j
                x = stepper.step_effective(x, p_eff[j].T)
                if step_index % record_every == 0 or step_index == n_steps:
                    times.append(float(step_times[j]))
                    records.append(observe(x))
            p_prev = p_block[-1]
        if dt_final is not None:
            final_stepper: _ImplicitStepper = stepper_cls(
                network, dt_final, backend=backend
            )
            p_end = _materialize(columns, np.array([t_end]), n_nodes)[0]
            p_eff_final = final_stepper.effective_power(p_prev, p_end)
            x = final_stepper.step_effective(x, p_eff_final.T)
            times.append(t_end)
            records.append(observe(x))
    _BATCH_RUNS.inc()
    _BATCH_SCENARIOS.inc(n_scenarios)
    _BATCH_STEPS.inc(n_steps)
    return BatchedTransientResult(
        times=np.asarray(times), states=np.stack(records, axis=0), tags=tags
    )


def batched_simulate_schedules(
    network: ThermalNetwork,
    schedules: Sequence[PiecewiseConstantSchedule],
    dt: float,
    x0s: Optional[Sequence[Optional[np.ndarray]]] = None,
    method: str = "trapezoidal",
    record_every: int = 1,
    projector: Optional[Projector] = None,
    tags: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
) -> BatchedTransientResult:
    """Integrate K piecewise-constant schedules in lockstep.

    Mirrors :func:`~repro.solver.events.simulate_schedule` step for
    step — the same segment walk, the same short-step insertion at
    segment ends — so column ``k`` is bitwise identical to the serial
    call with ``schedules[k]``.  All schedules must share one boundary
    grid (the shape of a same-model campaign group); mismatched grids
    raise :class:`SolverError`, which campaign callers treat as "fall
    back to per-job execution".  As with
    :func:`batched_transient_simulate`, "bitwise" is per-backend:
    tolerance backends match within their documented rtol instead.
    """
    if not schedules:
        raise SolverError("need at least one schedule")
    if record_every < 1:
        raise SolverError("record_every must be >= 1")
    stepper_cls = stepper_class(method)
    n_nodes = network.n_nodes
    n_scenarios = len(schedules)
    reference = schedules[0].boundaries
    for k, schedule in enumerate(schedules[1:], start=1):
        if schedule.boundaries != reference:
            raise SolverError(
                f"schedule {k} has a different boundary grid than "
                "schedule 0; same-grid schedules are required to batch"
            )
    tags_resolved = _resolve_tags(
        list(tags) if tags is not None else [""] * n_scenarios, n_scenarios
    )
    x = _initial_states(
        list(x0s) if x0s is not None else [None] * n_scenarios, n_nodes
    )
    observe = _make_observer(projector, n_scenarios)

    stepper: _ImplicitStepper = stepper_cls(network, dt, backend=backend)
    short_steppers: Dict[float, _ImplicitStepper] = {}
    n_segments = len(schedules[0].powers)
    times: List[float] = [0.0]
    records: List[np.ndarray] = [observe(x)]
    now = 0.0
    step_counter = 0
    n_solves = 0
    with obs.span("solver.batched.schedule", method=method, dt=dt,
                  n_segments=n_segments, n_nodes=n_nodes,
                  n_scenarios=n_scenarios):
        for seg_index in range(n_segments):
            seg_end = reference[seg_index + 1]
            power = np.stack(
                [schedule.powers[seg_index] for schedule in schedules], axis=1
            )
            if power.shape[0] != n_nodes:
                raise SolverError(
                    f"schedule powers have {power.shape[0]} nodes, "
                    f"expected {n_nodes}"
                )
            # constant within the segment: compute the method's power
            # term once instead of per step (bitwise-equal elementwise)
            p_eff = stepper.effective_power(power, power)
            while now < seg_end - 1e-12:
                remaining = seg_end - now
                if remaining >= dt - 1e-12:
                    x = stepper.step_effective(x, p_eff)
                    now += dt
                else:
                    key = round(remaining, 15)
                    if key not in short_steppers:
                        short_steppers[key] = stepper_cls(
                            network, remaining, backend=backend
                        )
                    x = short_steppers[key].step_effective(x, p_eff)
                    now = seg_end
                step_counter += 1
                n_solves += 1
                if step_counter % record_every == 0 or now >= seg_end - 1e-12:
                    times.append(now)
                    records.append(observe(x))
    _BATCH_RUNS.inc()
    _BATCH_SCENARIOS.inc(n_scenarios)
    _BATCH_STEPS.inc(n_solves)
    return BatchedTransientResult(
        times=np.asarray(times), states=np.stack(records, axis=0),
        tags=tags_resolved,
    )
