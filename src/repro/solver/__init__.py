"""Steady-state and transient solvers for thermal RC networks."""

from .backends import (
    DEFAULT_BACKEND,
    Factor,
    LinearBackend,
    available_backends,
    backend_override,
    get_backend,
    register_backend,
)
from .steady import steady_state, steady_block_temperatures
from .transient import (
    TransientResult,
    transient_step_response,
    transient_simulate,
    TrapezoidalStepper,
    BackwardEulerStepper,
)
from .events import PiecewiseConstantSchedule, simulate_schedule
from .batched import (
    BatchScenario,
    BatchedTransientResult,
    batched_simulate_schedules,
    batched_transient_simulate,
)
from .coupled import (
    CoupledSteadyResult,
    steady_state_with_leakage,
    transient_with_leakage,
)
from .adaptive import AdaptiveTransientSolver
from .analytic import (
    AnalyticSolution,
    AnalyticSteadyEngine,
    accuracy_envelope,
    analytic_block_temperatures,
    envelope_bounds,
    envelope_table,
)

__all__ = [
    "DEFAULT_BACKEND",
    "Factor",
    "LinearBackend",
    "available_backends",
    "backend_override",
    "get_backend",
    "register_backend",
    "steady_state",
    "steady_block_temperatures",
    "TransientResult",
    "transient_step_response",
    "transient_simulate",
    "TrapezoidalStepper",
    "BackwardEulerStepper",
    "PiecewiseConstantSchedule",
    "simulate_schedule",
    "BatchScenario",
    "BatchedTransientResult",
    "batched_simulate_schedules",
    "batched_transient_simulate",
    "CoupledSteadyResult",
    "steady_state_with_leakage",
    "transient_with_leakage",
    "AdaptiveTransientSolver",
    "AnalyticSolution",
    "AnalyticSteadyEngine",
    "accuracy_envelope",
    "analytic_block_temperatures",
    "envelope_bounds",
    "envelope_table",
]
