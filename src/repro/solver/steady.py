"""Steady-state solution of a thermal RC network.

Steady state solves ``A x = P`` for the vector of temperature rises
``x = T - T_ambient``, where ``A`` is the symmetric positive definite
system matrix of the network.  The sparse Cholesky-like factorization is
delegated to SuperLU via :func:`scipy.sparse.linalg.splu` and cached on
the network, so repeated solves (e.g. the four flow directions of the
paper's Fig. 11, or DTM sweeps) refactor only when the network changes.
The cache is keyed on a fingerprint of the system matrix itself, so
mutating the network (or rebuilding its system matrix) after a solve
triggers refactorization instead of silently reusing a stale factor.
"""

from __future__ import annotations

import hashlib
import time
from typing import Annotated, Dict, Union

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import SuperLU, splu

from .. import obs
from .. import units
from ..errors import SolverError
from ..rcmodel.grid import ThermalGridModel
from ..rcmodel.network import ThermalNetwork

_FACTOR_CACHE_ATTR = "_cached_lu_factor"

_FACTORIZATIONS = obs.metrics().counter("solver.steady.factorizations")
_FACTOR_CACHE_HITS = obs.metrics().counter("solver.steady.factor_cache_hits")
_SOLVES = obs.metrics().counter("solver.steady.solves")
_SOLVE_SECONDS = obs.metrics().histogram("solver.steady.solve_seconds")


def system_fingerprint(matrix: sparse.spmatrix) -> str:
    """A fast content hash of a CSC/CSR sparse matrix.

    Hashes the value/index/pointer arrays and the shape; two matrices
    share a fingerprint iff they hold identical sparse content.  Cost
    is linear in nnz (a memory pass), negligible next to a
    factorization but enough to catch in-place mutation.
    """
    digest = hashlib.sha256()
    digest.update(repr(matrix.shape).encode())
    digest.update(np.ascontiguousarray(matrix.data).tobytes())
    digest.update(np.ascontiguousarray(matrix.indices).tobytes())
    digest.update(np.ascontiguousarray(matrix.indptr).tobytes())
    return digest.hexdigest()


def _factorize(network: ThermalNetwork) -> SuperLU:
    matrix = network.system_matrix
    fingerprint = system_fingerprint(matrix)
    cached = getattr(network, _FACTOR_CACHE_ATTR, None)
    if cached is not None and cached[0] == fingerprint:
        _FACTOR_CACHE_HITS.inc()
        return cached[1]
    with obs.span("solver.steady.factorize",
                  n_nodes=matrix.shape[0], nnz=int(matrix.nnz)):
        try:
            factor = splu(matrix)
        except RuntimeError as exc:  # singular matrix
            raise SolverError(
                f"steady-state factorization failed: {exc}"
            ) from exc
    _FACTORIZATIONS.inc()
    setattr(network, _FACTOR_CACHE_ATTR, (fingerprint, factor))
    return factor


def steady_state(
    network: ThermalNetwork,
    node_power: Annotated[
        np.ndarray, units.array_shape("n_nodes"), units.array_dtype("float64")
    ],
) -> Annotated[
    np.ndarray, units.array_shape("n_nodes"), units.array_dtype("float64")
]:
    """Solve for node temperature rises given a node power vector (W)."""
    node_power = np.asarray(node_power, dtype=float)
    if node_power.shape != (network.n_nodes,):
        raise SolverError(
            f"power vector has shape {node_power.shape}, "
            f"expected ({network.n_nodes},)"
        )
    if not np.all(np.isfinite(node_power)):
        raise SolverError(
            "power vector contains non-finite values (NaN/Inf); "
            "check the block power map before solving"
        )
    t0 = time.perf_counter()
    with obs.span("solver.steady.solve", n_nodes=network.n_nodes):
        rise = _factorize(network).solve(node_power)
        if not np.all(np.isfinite(rise)):
            raise SolverError(
                "steady-state solve produced non-finite temperatures"
            )
    _SOLVES.inc()
    _SOLVE_SECONDS.observe(time.perf_counter() - t0)
    return rise


def steady_block_temperatures(
    model: ThermalGridModel,
    block_power: Union[np.ndarray, Dict[str, float]],
) -> Dict[str, float]:
    """Per-block steady temperatures (Kelvin) for a power assignment.

    Convenience wrapper: expands block power onto the grid, solves, and
    aggregates back to named blocks.
    """
    rise = steady_state(model.network, model.node_power(block_power))
    temps = model.block_temperatures(rise)
    return model.floorplan.power_dict(temps)
