"""Steady-state solution of a thermal RC network.

Steady state solves ``A x = P`` for the vector of temperature rises
``x = T - T_ambient``, where ``A`` is the symmetric positive definite
system matrix of the network.  The factorization is delegated to the
selected :mod:`~repro.solver.backends` engine (SuperLU by default) and
cached on the network, so repeated solves (e.g. the four flow
directions of the paper's Fig. 11, or DTM sweeps) refactor only when
the network — or the backend — changes.  The cache is keyed on a
fingerprint of the system matrix itself plus the backend identity, so
mutating the network (or rebuilding its system matrix) after a solve
triggers refactorization instead of silently reusing a stale factor,
and a factor produced by one backend is never served to another.
"""

from __future__ import annotations

import hashlib
import time
from typing import Annotated, Dict, Optional, Tuple, Union

import numpy as np
from scipy import sparse

from .. import obs
from .. import units
from ..errors import SolverError
from ..rcmodel.grid import ThermalGridModel
from ..rcmodel.network import ThermalNetwork
from . import backends
from .backends import Factor, LinearBackend

_FACTOR_CACHE_ATTR = "_cached_lu_factor"

_FACTORIZATIONS = obs.metrics().counter("solver.steady.factorizations")
_FACTOR_CACHE_HITS = obs.metrics().counter("solver.steady.factor_cache_hits")
_SOLVES = obs.metrics().counter("solver.steady.solves")
_SOLVE_SECONDS = obs.metrics().histogram("solver.steady.solve_seconds")


def system_fingerprint(matrix: sparse.spmatrix) -> str:
    """A fast content hash of a CSC/CSR sparse matrix.

    Hashes the storage format, shape, array dtypes, and the
    value/index/pointer arrays; two matrices share a fingerprint iff
    they hold identical sparse content in the same representation.
    The format and index dtype matter: the same logical matrix stored
    CSC vs CSR (or with int32 vs int64 indices) factorizes through
    different code paths, so the raw buffer bytes alone are not a safe
    identity.  Cost is linear in nnz (a memory pass), negligible next
    to a factorization but enough to catch in-place mutation.
    """
    digest = hashlib.sha256()
    digest.update(matrix.format.encode())
    digest.update(repr(matrix.shape).encode())
    digest.update(str(matrix.data.dtype).encode())
    digest.update(str(matrix.indices.dtype).encode())
    digest.update(str(matrix.indptr.dtype).encode())
    digest.update(np.ascontiguousarray(matrix.data).tobytes())
    digest.update(np.ascontiguousarray(matrix.indices).tobytes())
    digest.update(np.ascontiguousarray(matrix.indptr).tobytes())
    return digest.hexdigest()


def _factorize(
    network: ThermalNetwork,
    backend: Optional[LinearBackend] = None,
) -> Factor:
    if backend is None:
        backend = backends.get_backend()
    matrix = network.system_matrix
    key: Tuple[str, str] = (system_fingerprint(matrix), backend.cache_key())
    cached = getattr(network, _FACTOR_CACHE_ATTR, None)
    if cached is not None and cached[0] == key:
        _FACTOR_CACHE_HITS.inc()
        factor: Factor = cached[1]
        return factor
    with obs.span("solver.steady.factorize", backend=backend.name,
                  n_nodes=matrix.shape[0], nnz=int(matrix.nnz)):
        # backend.factorize normalizes every engine's failure mode
        # (SuperLU RuntimeError, LAPACK LinAlgError, ...) to SolverError
        factor = backend.factorize(matrix)
    _FACTORIZATIONS.inc()
    setattr(network, _FACTOR_CACHE_ATTR, (key, factor))
    return factor


def steady_state(
    network: ThermalNetwork,
    node_power: Annotated[
        np.ndarray, units.array_shape("n_nodes"), units.array_dtype("float64")
    ],
    backend: Optional[str] = None,
) -> Annotated[
    np.ndarray, units.array_shape("n_nodes"), units.array_dtype("float64")
]:
    """Solve for node temperature rises given a node power vector (W)."""
    node_power = np.asarray(node_power, dtype=float)
    if node_power.shape != (network.n_nodes,):
        raise SolverError(
            f"power vector has shape {node_power.shape}, "
            f"expected ({network.n_nodes},)"
        )
    if not np.all(np.isfinite(node_power)):
        raise SolverError(
            "power vector contains non-finite values (NaN/Inf); "
            "check the block power map before solving"
        )
    engine = backends.get_backend(backend)
    t0 = time.perf_counter()
    with obs.span("solver.steady.solve", n_nodes=network.n_nodes):
        factor = _factorize(network, engine)
        with obs.span("solver.backend.solve", backend=engine.name,
                      n_nodes=network.n_nodes):
            rise = factor.solve(node_power)
        if not np.all(np.isfinite(rise)):
            raise SolverError(
                "steady-state solve produced non-finite temperatures"
            )
    _SOLVES.inc()
    _SOLVE_SECONDS.observe(time.perf_counter() - t0)
    return rise


def steady_block_temperatures(
    model: ThermalGridModel,
    block_power: Union[np.ndarray, Dict[str, float]],
    backend: Optional[str] = None,
) -> Dict[str, float]:
    """Per-block steady temperatures (Kelvin) for a power assignment.

    Convenience wrapper: expands block power onto the grid, solves, and
    aggregates back to named blocks.
    """
    rise = steady_state(
        model.network, model.node_power(block_power), backend=backend
    )
    temps = model.block_temperatures(rise)
    return model.floorplan.power_dict(temps)
