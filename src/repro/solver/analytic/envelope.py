"""Accuracy envelope: the analytic engine measured against the RC solve.

The paper validates its RC model against IR measurement; this module
plays the same role one level down, validating the analytic engine
against the RC model it approximates.  :func:`accuracy_envelope`
sweeps grid sizes and power maps, solves each case with both engines,
and reports max/mean cell errors — the numbers DESIGN.md §8 tabulates
and the campaign triage band must dominate for skip decisions to be
safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...floorplan.block import Floorplan
from ...package.config import CoolingConfig
from ...rcmodel.grid import ThermalGridModel
from .engine import AnalyticSteadyEngine


@dataclass(frozen=True)
class EnvelopePoint:
    """Analytic-vs-RC agreement for one (grid, power map) case."""

    nx: int
    ny: int
    power: str
    #: Peak RC steady rise, K (the scale errors are judged against).
    peak_rise_k: float
    #: Largest absolute cell error on the active layer, K.
    max_abs_err_k: float
    #: Mean absolute cell error on the active layer, K.
    mean_abs_err_k: float
    #: ``max_abs_err_k / peak_rise_k``.
    max_rel_err: float


def default_power_maps(floorplan: Floorplan) -> Dict[str, Dict[str, float]]:
    """The standard probe set: uniform, single hot block, checkerboard.

    Uniform power exercises the mode-0 (package resistance) path, a
    single hot block the localized spreading response, and the
    checkerboard the highest lateral modes — together they bracket the
    spectrum a real power map excites.
    """
    names = list(floorplan.names)
    uniform = {name: 2.0 for name in names}
    hot = {name: (12.0 if i == 0 else 0.5) for i, name in enumerate(names)}
    checker = {name: (4.0 if i % 2 == 0 else 0.5)
               for i, name in enumerate(names)}
    return {"uniform": uniform, "hot_block": hot, "checkerboard": checker}


def accuracy_envelope(
    floorplan: Floorplan,
    config: CoolingConfig,
    grid_sizes: Sequence[int] = (8, 16, 32),
    power_maps: Optional[Dict[str, Dict[str, float]]] = None,
    h_correction: bool = True,
) -> List[EnvelopePoint]:
    """Measure analytic-vs-``steady_state`` agreement over a sweep.

    For every grid size and named block-power map, both engines solve
    the same model and the active-layer cell rises are compared.
    Returns one :class:`EnvelopePoint` per case, grid-major.
    """
    from ..steady import steady_state

    maps = power_maps if power_maps is not None else default_power_maps(floorplan)
    points: List[EnvelopePoint] = []
    for size in grid_sizes:
        model = ThermalGridModel(floorplan, config, nx=size, ny=size)
        engine = AnalyticSteadyEngine(model, h_correction=h_correction)
        for name, block_power in maps.items():
            reference = model.silicon_cell_rise(
                steady_state(model.network, model.node_power(block_power))
            )
            predicted = engine.solve(block_power).active_rise
            error = np.abs(predicted - reference)
            peak = float(reference.max())
            points.append(EnvelopePoint(
                nx=size, ny=size, power=name,
                peak_rise_k=peak,
                max_abs_err_k=float(error.max()),
                mean_abs_err_k=float(error.mean()),
                max_rel_err=float(error.max() / max(peak, 1e-300)),
            ))
    return points


def envelope_bounds(points: Sequence[EnvelopePoint]) -> Tuple[float, float]:
    """The envelope itself: worst (max_abs_err_k, max_rel_err) of a sweep."""
    if not points:
        return 0.0, 0.0
    return (max(p.max_abs_err_k for p in points),
            max(p.max_rel_err for p in points))


def envelope_table(points: Sequence[EnvelopePoint]) -> str:
    """The sweep as a markdown table (what DESIGN.md §8 embeds)."""
    lines = [
        "| grid | power map | peak rise (K) | max err (K) "
        "| mean err (K) | max rel |",
        "|---|---|---|---|---|---|",
    ]
    for p in points:
        lines.append(
            f"| {p.nx}x{p.ny} | {p.power} | {p.peak_rise_k:.2f} "
            f"| {p.max_abs_err_k:.3g} | {p.mean_abs_err_k:.3g} "
            f"| {100.0 * p.max_rel_err:.2f}% |"
        )
    return "\n".join(lines)
