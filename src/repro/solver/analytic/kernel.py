"""The spectral Green's-function kernel and its content-hash cache.

For each lateral spatial mode ``m`` of the image-extended grid
(:mod:`repro.solver.analytic.images`), the layered slab reduces to a
tiny ``L x L`` vertical-chain system

``M(m) = diag(g_x lam_x + g_y lam_y + b_mean + rim/n) + tridiag(-g_v)``

whose inverse columns are the discrete Green's function: the spectral
temperature response at every layer to unit power injected at one
layer.  All modes are solved in one batched ``numpy.linalg.solve``
over a ``(n_modes, L, L)`` stack; the uniform mode additionally
carries the rim Schur complement (see
:mod:`repro.solver.analytic.stack`).

Kernels are cached process-wide under the stack's content-hash
fingerprint — the same discipline as the LU cache of
:mod:`repro.solver.steady` — so sweeps over power maps, flow
directions, or triage screens of one package pay the build once.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Annotated

import numpy as np

from ... import obs
from ...errors import SolverError
from .images import neumann_eigenvalues
from .stack import SlabStack
from ... import units

_KERNEL_BUILDS = obs.metrics().counter("solver.analytic.kernel_builds")
_KERNEL_CACHE_HITS = obs.metrics().counter("solver.analytic.kernel_cache_hits")

#: Bounded process-wide kernel cache (LRU), keyed on stack fingerprint.
_CACHE: "OrderedDict[str, SpectralKernel]" = OrderedDict()
_CACHE_MAX = 32


class SpectralKernel:
    """Per-mode Green's-function responses for one slab stack.

    Stores, for every lateral mode, the response of *all* layers to
    unit injection at each of the stack's
    :attr:`~repro.solver.analytic.stack.SlabStack.injection_indices`.
    The chain matrices are real symmetric, so the stored responses are
    real and reciprocity (``K[a, b] == K[b, a]``) holds by
    construction.
    """

    def __init__(self, stack: SlabStack) -> None:
        self.stack = stack
        self.fingerprint = stack.kernel_fingerprint
        n_layers = stack.n_layers
        n_modes_y, n_modes_x = 2 * stack.ny, stack.nx + 1
        lam_x = neumann_eigenvalues(stack.nx, n_modes_x)
        lam_y = neumann_eigenvalues(stack.ny, n_modes_y)

        chain = np.zeros((n_modes_y, n_modes_x, n_layers, n_layers))
        for i, layer in enumerate(stack.layers):
            diagonal = layer.ambient_mean + stack.rim_load[i] / stack.n_cells
            chain[..., i, i] = (
                diagonal
                + layer.g_lateral_x * lam_x[np.newaxis, :]
                + layer.g_lateral_y * lam_y[:, np.newaxis]
            )
        for i, g in enumerate(stack.g_vertical):
            chain[..., i, i] += g
            chain[..., i + 1, i + 1] += g
            chain[..., i, i + 1] = -g
            chain[..., i + 1, i] = -g
        if stack.rim_schur is not None:
            # The Schur complement of the (near-isothermal) rim loads
            # only the spatially uniform mode; every other mode sees
            # the rim as the diagonal load applied above.
            chain[0, 0] += stack.rim_schur / stack.n_cells

        injection = stack.injection_indices
        unit = np.zeros((n_layers, len(injection)))
        for column, layer_index in enumerate(injection):
            unit[layer_index, column] = 1.0
        rhs = np.broadcast_to(
            unit, (n_modes_y * n_modes_x, n_layers, len(injection))
        )
        try:
            solved = np.linalg.solve(
                chain.reshape(-1, n_layers, n_layers), np.ascontiguousarray(rhs)
            )
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                f"analytic kernel build failed (singular chain): {exc}"
            ) from exc
        #: ``(2 ny, nx + 1, L, n_injection)`` real responses.  Frozen:
        #: kernels are shared process-wide through the LRU cache, and
        #: :meth:`response` hands out views of this array — an in-place
        #: write would corrupt every later solve on this stack.
        self._response = solved.reshape(
            n_modes_y, n_modes_x, n_layers, len(injection)
        )
        self._response.setflags(write=False)
        self._column = {layer: k for k, layer in enumerate(injection)}

    def response(
        self, out_layer: int, in_layer: int
    ) -> Annotated[
        np.ndarray,
        units.array_shape("2*ny", "nx+1"),
        units.cache_shared(),
    ]:
        """Per-mode response at ``out_layer`` to injection at ``in_layer``.

        ``in_layer`` must be one of the stack's injection indices;
        output layers are unrestricted.  Shape ``(2 ny, nx + 1)``.
        The returned view aliases the cached kernel and is read-only;
        ``.copy()`` it before mutating.
        """
        try:
            column = self._column[in_layer]
        except KeyError:
            raise SolverError(
                f"kernel stores no injection column for layer {in_layer}; "
                f"available: {sorted(self._column)}"
            ) from None
        return self._response[:, :, out_layer, column]


def get_kernel(stack: SlabStack) -> SpectralKernel:
    """The cached spectral kernel for a stack (build on first use)."""
    fingerprint = stack.kernel_fingerprint
    cached = _CACHE.get(fingerprint)
    if cached is not None:
        _CACHE.move_to_end(fingerprint)
        _KERNEL_CACHE_HITS.inc()
        return cached
    with obs.span("solver.analytic.kernel", nx=stack.nx, ny=stack.ny,
                  n_layers=stack.n_layers):
        kernel = SpectralKernel(stack)
    _KERNEL_BUILDS.inc()
    _CACHE[fingerprint] = kernel
    while len(_CACHE) > _CACHE_MAX:
        _CACHE.popitem(last=False)
    return kernel


def kernel_cache_clear() -> None:
    """Drop every cached kernel (tests and memory-pressure hooks)."""
    _CACHE.clear()
