"""The analytic steady-state engine: FFT-convolved Green's functions.

The fourth solver engine (after fixed-step, adaptive, and batched
transient): solves the steady problem of a
:class:`~repro.rcmodel.grid.ThermalGridModel` with **no sparse linear
algebra at all**.  One solve is two real FFTs plus an elementwise
multiply by the cached spectral kernel — ``O(N log N)`` with a tiny
constant — which is what makes analytical pre-screening of large
campaigns (:mod:`repro.campaign.triage`) cheap.

Accuracy contract (pinned by ``tests/test_solver_crosschecks.py`` and
documented in DESIGN.md §8):

* configurations with no overhanging layers and uniform convection are
  solved *exactly* (to FFT roundoff) — the spectral basis diagonalizes
  the discrete operator itself, not a continuum approximation of it;
* a non-uniform h(x) boundary (the paper's oil flow profile) is
  handled by a damped fixed-point (Born) iteration on the fluctuation
  field and converges to the same exact solution;
* overhanging layers (AIR-SINK spreader/sink, the secondary-path PCB)
  are folded in through an isothermal-rim Schur elimination that is
  exact for the uniform mode and approximate for the gradients — the
  residual error is what :mod:`repro.solver.analytic.envelope`
  measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Annotated, Dict, Sequence, Union

import numpy as np

from ... import obs
from ... import units
from ...errors import SolverError
from ...rcmodel.grid import ThermalGridModel
from .images import forward_modes, inverse_modes
from .kernel import SpectralKernel, get_kernel
from .stack import SlabStack, stack_from_model

_SOLVES = obs.metrics().counter("solver.analytic.solves")
_SOLVE_SECONDS = obs.metrics().histogram("solver.analytic.solve_seconds")

BlockPower = Union[np.ndarray, Dict[str, float], Sequence[float]]


@dataclass(eq=False)
class AnalyticSolution:
    """One analytic steady solve: cell rise fields + iteration record."""

    #: Temperature rise of the active (power) silicon cells, flat grid
    #: order, Kelvin.
    active_rise: np.ndarray
    #: Rise of the die back-surface cells (what the IR camera sees).
    surface_rise: np.ndarray
    #: Fixed-point iterations spent on the non-uniform h correction
    #: (0 when the boundary is uniform).
    iterations: int
    #: Last update of the correction field, normalized by
    #: ``atol + norm(target)`` (so it stays finite as targets -> 0).
    residual: float
    #: Whether the correction iteration met its tolerance (vacuously
    #: true for uniform boundaries).
    converged: bool


class AnalyticSteadyEngine:
    """Green's-function steady solver bound to one grid model.

    Parameters
    ----------
    model:
        The assembled RC grid model; its matrix is read once to build
        the slab stack (see :mod:`repro.solver.analytic.stack`), after
        which solves never touch sparse data again.
    h_correction:
        Apply the fixed-point correction for non-uniform convection
        fields (h(x)).  With ``False`` the mean h is used — faster,
        exact only for uniform boundaries.
    max_iterations, rtol, atol:
        Stopping rule of the correction iteration: the update norm of
        every correction source below ``atol + rtol * norm(target)``,
        or give up (with ``converged=False`` on the solution) after
        ``max_iterations``.  The mixed criterion matters when the
        correction modes legitimately shrink toward zero (a nearly
        uniform ambient field): a purely relative test divides two
        rounding-noise-sized norms and can report non-convergence on a
        solve that is exact to machine precision, while ``atol`` (in
        the mode-amplitude unit, K-ish) accepts it.
    """

    def __init__(
        self,
        model: ThermalGridModel,
        h_correction: bool = True,
        max_iterations: int = 60,
        rtol: float = 1e-11,
        atol: float = 1e-12,
    ) -> None:
        if max_iterations < 1:
            raise SolverError("max_iterations must be >= 1")
        if rtol <= 0:
            raise SolverError("rtol must be positive")
        if atol <= 0:
            raise SolverError("atol must be positive")
        self.model = model
        self.h_correction = h_correction
        self.max_iterations = int(max_iterations)
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.stack: SlabStack = stack_from_model(model)
        self.kernel: SpectralKernel = get_kernel(self.stack)

    # -- solves -------------------------------------------------------------

    def solve_cells(
        self,
        cell_power: Annotated[np.ndarray, units.array_shape("n_cells")],
    ) -> AnalyticSolution:
        """Solve for a per-cell power map on the active silicon layer.

        ``cell_power`` is flat grid order, Watts, shape
        ``(nx * ny,)`` — the same layout
        :meth:`~repro.rcmodel.grid.ThermalGridModel.node_power` injects.
        """
        stack = self.stack
        power = np.asarray(cell_power, dtype=float)
        if power.shape != (stack.n_cells,):
            raise SolverError(
                f"cell power has shape {power.shape}, expected "
                f"({stack.n_cells},)"
            )
        if not np.all(np.isfinite(power)):
            raise SolverError(
                "cell power map contains non-finite values (NaN/Inf)"
            )
        t0 = time.perf_counter()
        with obs.span("solver.analytic.solve", nx=stack.nx, ny=stack.ny,
                      n_layers=stack.n_layers) as span:
            solution = self._solve_spectral(power)
            span.annotate(iterations=solution.iterations,
                          converged=solution.converged)
        _SOLVES.inc()
        _SOLVE_SECONDS.observe(time.perf_counter() - t0)
        return solution

    def solve(self, block_power: BlockPower) -> AnalyticSolution:
        """Solve for a per-block power assignment (dict or vector)."""
        if isinstance(block_power, dict):
            block_power = self.model.floorplan.power_vector(block_power)
        cells = self.model.mapping.block_power_to_cells(
            np.asarray(block_power, dtype=float)
        )
        return self.solve_cells(cells)

    def block_rise(self, block_power: BlockPower) -> np.ndarray:
        """Per-block area-averaged steady rise, floorplan order (K)."""
        solution = self.solve(block_power)
        return self.model.mapping.cell_to_block_average(solution.active_rise)

    def block_temperatures(self, block_power: BlockPower) -> Dict[str, float]:
        """Per-block absolute steady temperatures (Kelvin) by name.

        The analytic mirror of
        :func:`repro.solver.steady.steady_block_temperatures`.
        """
        temps = self.block_rise(block_power) + self.model.config.ambient
        return self.model.floorplan.power_dict(temps)

    # -- internals ----------------------------------------------------------

    def _solve_spectral(
        self,
        power: Annotated[
            np.ndarray,
            units.array_shape("n_cells"),
            units.array_dtype("float64"),
        ],
    ) -> AnalyticSolution:
        stack, kernel = self.stack, self.kernel
        ny, nx = stack.ny, stack.nx
        active = stack.active_index
        power_modes = forward_modes(power.reshape(ny, nx))

        corrections: Dict[int, np.ndarray] = {}
        iterations, residual = 0, 0.0
        converged = True
        targets = stack.nonuniform_indices if self.h_correction else ()
        if targets:
            corrections = {
                t: np.zeros_like(power_modes) for t in targets
            }
            converged = False
            damping = 1.0
            previous = np.inf
            for iterations in range(1, self.max_iterations + 1):
                residual = 0.0
                all_within = True
                for t in targets:
                    layer = stack.layers[t]
                    assert layer.ambient_delta is not None
                    modes_t = kernel.response(t, active) * power_modes
                    for u, source in corrections.items():
                        modes_t += kernel.response(t, u) * source
                    field_t = inverse_modes(modes_t, ny, nx).ravel()
                    target = forward_modes(
                        (-layer.ambient_delta * field_t).reshape(ny, nx)
                    )
                    update = target - corrections[t]
                    upd_norm = float(np.linalg.norm(update))
                    tgt_norm = float(np.linalg.norm(target))
                    # mixed absolute/relative test: when the correction
                    # modes legitimately shrink toward zero, the ratio
                    # of two noise-sized norms must not veto convergence
                    if upd_norm > self.atol + self.rtol * tgt_norm:
                        all_within = False
                    residual = max(
                        residual, upd_norm / (self.atol + tgt_norm)
                    )
                    corrections[t] = corrections[t] + damping * update
                if all_within:
                    converged = True
                    break
                if residual > previous:
                    # the undamped map is expanding; halve the step
                    damping = max(damping / 2.0, 1.0 / 16.0)
                previous = residual

        def field_at(layer_index: int) -> np.ndarray:
            modes = kernel.response(layer_index, active) * power_modes
            for u, source in corrections.items():
                modes = modes + kernel.response(layer_index, u) * source
            return inverse_modes(modes, ny, nx).ravel()

        return AnalyticSolution(
            active_rise=field_at(active),
            surface_rise=field_at(stack.surface_index),
            iterations=iterations,
            residual=residual,
            converged=converged,
        )


def analytic_block_temperatures(
    model: ThermalGridModel,
    block_power: BlockPower,
    h_correction: bool = True,
) -> Dict[str, float]:
    """One-shot convenience: analytic per-block temperatures (Kelvin)."""
    engine = AnalyticSteadyEngine(model, h_correction=h_correction)
    return engine.block_temperatures(block_power)
