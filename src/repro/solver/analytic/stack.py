"""Layer-stack extraction for the analytic steady-state engine.

The spectral Green's-function solver (DESIGN.md §8) needs the grid
model reduced to a *layered slab*: per layer, one lateral conductance
per axis, one vertical coupling to each neighbour, and a per-cell
conductance to ambient.  Rather than re-deriving those numbers from
material tables — and risking drift against the RC assembly — this
module reads them back out of the assembled
:class:`~repro.rcmodel.grid.ThermalGridModel` matrix, so the analytic
engine solves, by construction, the same physics the RC model encodes.

Two departures from a pure slab are captured explicitly:

* **Non-uniform ambient conductance** (the oil h(x) profile of the
  paper's Eqns 7-8): split into its mean, which enters the spectral
  kernel, and a per-cell fluctuation field the engine corrects for
  iteratively.
* **Rim rings** (spreader/sink/PCB overhang nodes): Schur-eliminated
  into a small per-layer port admittance.  Under the isothermal-rim
  approximation the full Schur complement loads only the spatially
  uniform mode; the remaining modes see the rim as a diagonal load
  (see :mod:`repro.solver.analytic.kernel`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ...errors import SolverError
from ...rcmodel.grid import ThermalGridModel

#: Relative tolerance below which a per-cell ambient field counts as
#: uniform (no correction iteration needed).
_UNIFORM_RTOL = 1e-12


@dataclass(frozen=True, eq=False)
class StackLayer:
    """One layer of the extracted slab, in chain (bottom-to-top) order."""

    name: str
    #: Conductance between laterally adjacent cells, W/K (0 when the
    #: grid has a single cell along that axis).
    g_lateral_x: float
    g_lateral_y: float
    #: Mean per-cell conductance to ambient, W/K.
    ambient_mean: float
    #: Per-cell fluctuation around the mean (flat, grid order), or
    #: ``None`` when the layer's ambient load is uniform.
    ambient_delta: Optional[np.ndarray]


@dataclass(frozen=True, eq=False)
class SlabStack:
    """The layered-slab reduction of one thermal grid model."""

    nx: int
    ny: int
    layers: Tuple[StackLayer, ...]
    #: Vertical coupling between chain neighbours, W/K, length L-1.
    g_vertical: np.ndarray
    #: Chain index of the active (power-injection) silicon layer.
    active_index: int
    #: Chain index of the die back surface (IR-observed) layer.
    surface_index: int
    #: Total rim coupling per layer (W/K, length L; zero without rims).
    rim_load: np.ndarray
    #: Uniform-mode Schur correction ``-W A_RR^-1 W^T`` (L x L), or
    #: ``None`` when the model has no rim nodes.
    rim_schur: Optional[np.ndarray]

    @property
    def n_layers(self) -> int:
        """Number of layers in the chain."""
        return len(self.layers)

    @property
    def n_cells(self) -> int:
        """Cells per layer (``nx * ny``)."""
        return self.nx * self.ny

    @property
    def nonuniform_indices(self) -> Tuple[int, ...]:
        """Chain indices whose ambient load varies across cells."""
        return tuple(
            i for i, layer in enumerate(self.layers)
            if layer.ambient_delta is not None
        )

    @property
    def injection_indices(self) -> Tuple[int, ...]:
        """Chain indices the kernel must store response columns for:
        the active layer plus every non-uniform-ambient layer."""
        return tuple(sorted({self.active_index, *self.nonuniform_indices}))

    @property
    def kernel_fingerprint(self) -> str:
        """Content hash of everything the spectral kernel depends on.

        Mirrors the discipline of
        :func:`repro.solver.steady.system_fingerprint`: two stacks
        share a fingerprint iff they produce identical kernels.  The
        per-cell ambient fluctuations are deliberately excluded — they
        enter at apply time, not kernel-build time — which is what lets
        e.g. the four Fig. 11 flow directions share one kernel.
        """
        digest = hashlib.sha256()
        digest.update(repr((self.nx, self.ny, self.n_layers,
                            self.active_index, self.surface_index,
                            self.injection_indices)).encode())
        for layer in self.layers:
            digest.update(layer.name.encode())
            digest.update(np.array(
                [layer.g_lateral_x, layer.g_lateral_y, layer.ambient_mean]
            ).tobytes())
        digest.update(np.ascontiguousarray(self.g_vertical).tobytes())
        digest.update(np.ascontiguousarray(self.rim_load).tobytes())
        if self.rim_schur is not None:
            digest.update(np.ascontiguousarray(self.rim_schur).tobytes())
        return digest.hexdigest()


def _chain_layer_names(model: ThermalGridModel) -> List[str]:
    """Layer names bottom-to-top: secondary (reversed), die, primary."""
    names: List[str] = []
    if model.config.secondary is not None:
        names.extend(
            layer.name for layer in reversed(model.config.secondary.layers)
        )
    for s in range(model.silicon_sublayers):
        names.append("silicon" if s == 0 else f"silicon_sub{s}")
    names.extend(layer.name for layer in model.config.layers_above)
    return names


def _entry(matrix: "np.ndarray", row: int, col: int) -> float:
    """One scalar entry of a CSR matrix."""
    return float(matrix[row, col])


def stack_from_model(model: ThermalGridModel) -> SlabStack:
    """Extract the layered-slab parameters from an assembled grid model.

    Every number is read from the model's own system matrix and ambient
    vector, so the extraction cannot drift from the RC assembly.  Rim
    ring nodes (layers overhanging the die footprint) are eliminated
    exactly at the uniform mode via a Schur complement on the rim
    submatrix.
    """
    matrix = model.network.system_matrix.tocsr()
    ambient = model.network.ambient_conductance
    mapping = model.mapping
    nx, ny = mapping.nx, mapping.ny
    n_cells = mapping.n_cells

    names = _chain_layer_names(model)
    node_sets = []
    for name in names:
        try:
            node_sets.append(model.layer_nodes[name].grid_nodes)
        except KeyError:
            raise SolverError(
                f"model has no assembled layer {name!r}; cannot build the "
                "analytic stack"
            ) from None

    layers: List[StackLayer] = []
    for name, nodes in zip(names, node_sets):
        g_x = -_entry(matrix, int(nodes[0]), int(nodes[1])) if nx > 1 else 0.0
        g_y = -_entry(matrix, int(nodes[0]), int(nodes[nx])) if ny > 1 else 0.0
        if g_x < 0.0 or g_y < 0.0:
            raise SolverError(
                f"layer {name!r} has negative lateral coupling; the model "
                "is not a stacked grid the analytic engine understands"
            )
        cell_ambient = np.asarray(ambient[nodes], dtype=float)
        mean = float(cell_ambient.mean())
        delta = cell_ambient - mean
        scale = max(mean, float(np.abs(cell_ambient).max()), 1e-300)
        uniform = float(np.abs(delta).max()) <= _UNIFORM_RTOL * scale
        layers.append(StackLayer(
            name=name, g_lateral_x=g_x, g_lateral_y=g_y,
            ambient_mean=mean, ambient_delta=None if uniform else delta,
        ))

    g_vertical = np.empty(len(names) - 1)
    for i in range(len(names) - 1):
        below, above = node_sets[i], node_sets[i + 1]
        g = -_entry(matrix, int(below[0]), int(above[0]))
        if g <= 0.0:
            raise SolverError(
                f"layers {names[i]!r} and {names[i + 1]!r} are not "
                "vertically coupled; the chain extraction failed"
            )
        g_vertical[i] = g

    rim_load = np.zeros(len(names))
    rim_schur: Optional[np.ndarray] = None
    grid_mask = np.zeros(model.network.n_nodes, dtype=bool)
    for nodes in node_sets:
        grid_mask[nodes] = True
    rim_index = np.where(~grid_mask)[0]
    if rim_index.size:
        rim_rows = matrix[rim_index]
        coupling = np.empty((len(names), rim_index.size))
        for i, nodes in enumerate(node_sets):
            block = rim_rows[:, nodes]
            coupling[i] = -np.asarray(block.sum(axis=1)).ravel()
        rim_load = coupling.sum(axis=1)
        a_rr = np.asarray(rim_rows[:, rim_index].todense(), dtype=float)
        try:
            solved = np.linalg.solve(a_rr, coupling.T)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                f"rim elimination failed (singular rim block): {exc}"
            ) from exc
        rim_schur = -coupling @ solved

    active_index = names.index("silicon")
    surface_name = ("silicon" if model.silicon_sublayers == 1
                    else f"silicon_sub{model.silicon_sublayers - 1}")
    surface_index = names.index(surface_name)

    return SlabStack(
        nx=nx, ny=ny, layers=tuple(layers), g_vertical=g_vertical,
        active_index=active_index, surface_index=surface_index,
        rim_load=rim_load, rim_schur=rim_schur,
    )
