"""The analytic (Green's-function / FFT) steady-state engine.

An ``O(N log N)`` spectral alternative to the sparse
:func:`~repro.solver.steady.steady_state` solve, built from the same
assembled model (DESIGN.md §8):

* :mod:`~repro.solver.analytic.stack` — reduce the RC grid model to a
  layered slab (parameters read back from the matrix itself);
* :mod:`~repro.solver.analytic.images` — method-of-images transforms
  for the adiabatic lateral walls;
* :mod:`~repro.solver.analytic.kernel` — per-mode Green's-function
  responses, content-hash cached;
* :mod:`~repro.solver.analytic.engine` — the solver: FFT convolution
  plus a fixed-point correction for non-uniform h(x);
* :mod:`~repro.solver.analytic.envelope` — measured accuracy envelope
  against the RC reference.
"""

from .engine import (
    AnalyticSolution,
    AnalyticSteadyEngine,
    analytic_block_temperatures,
)
from .envelope import (
    EnvelopePoint,
    accuracy_envelope,
    default_power_maps,
    envelope_bounds,
    envelope_table,
)
from .images import even_extend, forward_modes, inverse_modes, neumann_eigenvalues
from .kernel import SpectralKernel, get_kernel, kernel_cache_clear
from .stack import SlabStack, StackLayer, stack_from_model

__all__ = [
    "AnalyticSolution",
    "AnalyticSteadyEngine",
    "EnvelopePoint",
    "SlabStack",
    "SpectralKernel",
    "StackLayer",
    "accuracy_envelope",
    "analytic_block_temperatures",
    "default_power_maps",
    "envelope_bounds",
    "envelope_table",
    "even_extend",
    "forward_modes",
    "get_kernel",
    "inverse_modes",
    "kernel_cache_clear",
    "neumann_eigenvalues",
    "stack_from_model",
]
