"""Method-of-images transforms for adiabatic lateral walls.

The RC grid's lateral boundaries are adiabatic (Neumann): no heat
leaves through the die's side walls.  The classic method of images
handles such walls by mirroring every heat source across each
boundary; on the discrete grid this is *exact* — reflecting the
``(ny, nx)`` power map into a ``(2ny, 2nx)`` half-sample-even field
and solving the periodic problem reproduces the Neumann solution on
the original quadrant, because the DFT of the even extension
diagonalizes the path-graph (Neumann) Laplacian with eigenvalues
``2 (1 - cos(pi q / n))``.

These helpers implement the transform pair the spectral kernel is
expressed in: even extension + ``rfft2`` forward, ``irfft2`` + crop
back.  The image construction lives here, once, so the kernel and the
engine cannot disagree on conventions.
"""

from __future__ import annotations

from typing import Annotated

import numpy as np
from scipy import fft as _fft

from ... import units


def even_extend(
    field: Annotated[np.ndarray, units.array_shape("ny", "nx")],
) -> Annotated[np.ndarray, units.array_shape("2*ny", "2*nx")]:
    """Half-sample-even (mirror) extension of a ``(ny, nx)`` field.

    Lays out the four image quadrants ``[[F, F_x], [F_y, F_xy]]`` where
    ``F_x``/``F_y``/``F_xy`` flip the field across the right, top, and
    corner walls.  The result is ``(2ny, 2nx)`` and periodic-symmetric,
    so a periodic solve on it is the Neumann solve on the original.
    """
    wide = np.concatenate([field, field[:, ::-1]], axis=1)
    return np.concatenate([wide, wide[::-1, :]], axis=0)


def forward_modes(
    field: Annotated[np.ndarray, units.array_shape("ny", "nx")],
) -> Annotated[
    np.ndarray,
    units.array_shape("2*ny", "nx+1"),
    units.array_dtype("complex"),
]:
    """Spectral coefficients of a field's even extension.

    Returns the ``rfft2`` of :func:`even_extend`, shape
    ``(2 ny, nx + 1)`` complex.
    """
    return _fft.rfft2(even_extend(field))


def inverse_modes(
    modes: Annotated[
        np.ndarray,
        units.array_shape("2*ny", "nx+1"),
        units.array_dtype("complex"),
    ],
    ny: int,
    nx: int,
) -> Annotated[
    np.ndarray, units.array_shape("ny", "nx"), units.array_dtype("float64")
]:
    """Invert :func:`forward_modes` and crop to the physical quadrant."""
    full = _fft.irfft2(modes, s=(2 * ny, 2 * nx))
    return np.ascontiguousarray(full[:ny, :nx])


def neumann_eigenvalues(
    n: int, n_modes: int
) -> Annotated[np.ndarray, units.array_shape("n_modes")]:
    """Eigenvalues of the 1-D Neumann path Laplacian on ``n`` cells.

    ``lam[q] = 2 (1 - cos(pi q / n))`` for ``q = 0 .. n_modes - 1`` —
    evaluated at the periodic frequencies of the 2n-point extension,
    which coincide with the Neumann (DCT-II) spectrum.
    """
    q = np.arange(n_modes)
    return 2.0 * (1.0 - np.cos(np.pi * q / n))
