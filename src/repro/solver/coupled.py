"""Temperature-power coupled solves (leakage feedback).

Leakage power grows (roughly exponentially) with temperature, so the
power map depends on the temperature map it produces.  The paper's
Conclusions flag exactly this coupling as what complicates translating
IR-bench measurements to the real package.  This module closes the
loop:

* :func:`steady_state_with_leakage` -- fixed-point iteration
  ``T -> P_leak(T) -> T`` with convergence and thermal-runaway
  detection;
* :func:`transient_with_leakage` -- transient stepping where each
  step's power is re-evaluated at the previous step's temperatures
  (first-order lag, adequate for thermal time scales).

Both accept any model exposing the common interface
(``ThermalGridModel`` or ``ThermalBlockModel``) and any callable
``leakage(block_temps_K) -> block_watts``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Union

import numpy as np

from ..errors import SolverError
from .steady import steady_state
from .transient import TransientResult, TrapezoidalStepper

if TYPE_CHECKING:
    from ..rcmodel.blockmodel import ThermalBlockModel
    from ..rcmodel.grid import ThermalGridModel

#: Either thermal model flavor (they share the solve-facing interface).
ThermalModel = Union["ThermalBlockModel", "ThermalGridModel"]

#: Per-block power: a vector in floorplan order or a name -> Watts map.
BlockPower = Union[np.ndarray, Dict[str, float], Sequence[float]]

LeakageFunction = Callable[[np.ndarray], np.ndarray]


@dataclass
class CoupledSteadyResult:
    """Converged coupled steady state."""

    rise: np.ndarray             # node temperature rises
    block_temps: np.ndarray      # absolute block temperatures (K)
    leakage: np.ndarray          # converged per-block leakage (W)
    iterations: int
    converged: bool

    @property
    def total_leakage(self) -> float:
        """Total leakage power at the converged temperatures, W."""
        return float(self.leakage.sum())


def steady_state_with_leakage(
    model: ThermalModel,
    dynamic_power: BlockPower,
    leakage: LeakageFunction,
    tolerance: float = 1e-3,
    max_iterations: int = 100,
    runaway_temperature: float = 500.0,
) -> CoupledSteadyResult:
    """Fixed-point coupled steady solve.

    Parameters
    ----------
    model:
        A thermal model (grid or block flavor).
    dynamic_power:
        Per-block dynamic power, vector or name->W dict.
    leakage:
        Callable mapping absolute block temperatures (K) to per-block
        leakage power (W).
    tolerance:
        Convergence threshold on the max block-temperature change per
        iteration, K.
    max_iterations:
        Iteration cap; exceeding it returns ``converged=False``.
    runaway_temperature:
        Raise :class:`SolverError` if any block exceeds this (K) --
        the leakage-thermal runaway the positive feedback can produce.
    """
    if isinstance(dynamic_power, dict):
        dynamic_power = model.floorplan.power_vector(dynamic_power)
    dynamic_power = np.asarray(dynamic_power, dtype=float)
    ambient = model.config.ambient
    block_temps = np.full(len(model.floorplan), ambient)
    rise = np.zeros(model.n_nodes)
    leak = np.zeros_like(dynamic_power)
    for iteration in range(1, max_iterations + 1):
        leak = np.asarray(leakage(block_temps), dtype=float)
        if leak.shape != dynamic_power.shape or np.any(leak < 0):
            raise SolverError("leakage() must return non-negative W per block")
        rise = steady_state(
            model.network, model.node_power(dynamic_power + leak)
        )
        new_temps = model.block_rise(rise) + ambient
        if np.any(new_temps > runaway_temperature):
            raise SolverError(
                f"thermal runaway: block temperature exceeded "
                f"{runaway_temperature} K at iteration {iteration}"
            )
        change = float(np.max(np.abs(new_temps - block_temps)))
        block_temps = new_temps
        if change < tolerance:
            return CoupledSteadyResult(
                rise=rise, block_temps=block_temps, leakage=leak,
                iterations=iteration, converged=True,
            )
    return CoupledSteadyResult(
        rise=rise, block_temps=block_temps, leakage=leak,
        iterations=max_iterations, converged=False,
    )


def transient_with_leakage(
    model: ThermalModel,
    dynamic_power_at: Callable[[float], np.ndarray],
    leakage: LeakageFunction,
    t_end: float,
    dt: float,
    x0: Optional[np.ndarray] = None,
    record_every: int = 1,
) -> TransientResult:
    """Transient solve with leakage re-evaluated each step.

    ``dynamic_power_at(t)`` returns the per-block dynamic power; the
    leakage added on top uses the block temperatures from the previous
    step (one-step lag).  Records per-block absolute temperatures.
    """
    if t_end <= 0 or dt <= 0:
        raise SolverError("t_end and dt must be positive")
    stepper = TrapezoidalStepper(model.network, dt)
    ambient = model.config.ambient
    x = np.zeros(model.n_nodes) if x0 is None else np.asarray(x0, float).copy()
    block_temps = model.block_rise(x) + ambient

    def node_power(t: float) -> np.ndarray:
        dynamic = np.asarray(dynamic_power_at(t), dtype=float)
        leak = np.asarray(leakage(block_temps), dtype=float)
        return model.node_power(dynamic + leak)

    n_steps = int(round(t_end / dt))
    times = [0.0]
    records = [block_temps.copy()]
    p_now = node_power(0.0)
    for step in range(1, n_steps + 1):
        t = step * dt
        p_next = node_power(t)
        x = stepper.step(x, p_now, p_next)
        p_now = p_next
        block_temps = model.block_rise(x) + ambient
        if step % record_every == 0 or step == n_steps:
            times.append(t)
            records.append(block_temps.copy())
    return TransientResult(
        times=np.asarray(times), states=np.vstack(records)
    )
