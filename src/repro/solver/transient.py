"""Transient solution of thermal RC networks.

Integrates ``C dx/dt = P(t) - A x`` with A-stable implicit one-step
methods.  Because ``A`` and ``C`` are constant, the implicit system
matrix is factorized once per (network, dt) and reused across all steps,
which keeps millisecond-resolution, multi-second simulations (paper
Figs. 6, 8, 12) fast.

Two steppers are provided:

* :class:`TrapezoidalStepper` (Crank-Nicolson) -- second order, the
  default; matches HotSpot's transient accuracy goals.
* :class:`BackwardEulerStepper` -- first order, L-stable; useful to
  damp the start-up transient of stiff configurations and as a
  cross-check of the trapezoidal results.

Both derive from one stepping core that accepts either a single state
vector ``(n,)`` or a batch matrix ``(n, K)`` whose columns advance in
lockstep through the same LU factorization — the mechanism behind
:mod:`repro.solver.batched`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple, Union

import numpy as np
from scipy import sparse

from .. import obs
from ..errors import SolverError
from ..rcmodel.network import ThermalNetwork
from . import backends
from .backends import Factor, LinearBackend

PowerInput = Union[np.ndarray, Callable[[float], np.ndarray]]

_MATRIX_BUILDS = obs.metrics().counter("solver.transient.matrix_builds")
_STEPS = obs.metrics().counter("solver.transient.steps")

#: Horizon/step alignment tolerance: ``t_end / dt`` ratios within one
#: part in 1e9 of an integer are float-division residue, not a real
#: remainder, and integrate as exactly that many full steps.
_ALIGN_RTOL = 1e-9


def plan_fixed_steps(t_end: float, dt: float) -> Tuple[int, Optional[float]]:
    """Split ``[0, t_end]`` into full ``dt`` steps plus an exact remainder.

    Returns ``(n_full, dt_final)``: ``dt_final`` is ``None`` when ``dt``
    divides ``t_end`` (within :data:`_ALIGN_RTOL`), otherwise the exact
    final partial step ``t_end - n_full * dt`` so the integration lands
    on ``t_end`` instead of silently rounding the horizon.
    """
    if t_end <= 0:
        raise SolverError("t_end must be positive")
    if dt <= 0:
        raise SolverError("dt must be positive")
    ratio = t_end / dt
    nearest = round(ratio)
    if nearest >= 1 and abs(ratio - nearest) <= _ALIGN_RTOL * nearest:
        return int(nearest), None
    if ratio < 1.0:
        raise SolverError(
            f"t_end shorter than one step (t_end={t_end:g}, dt={dt:g})"
        )
    n_full = int(ratio)
    return n_full, t_end - n_full * dt


@dataclass
class TransientResult:
    """Recorded trajectory of a transient simulation.

    ``states`` holds one row per recorded instant; if a projector was
    given to the simulation, rows are projector outputs (e.g. per-block
    rises), otherwise full node rise vectors.
    """

    times: np.ndarray
    states: np.ndarray

    def final(self) -> np.ndarray:
        """State at the last recorded instant."""
        return self.states[-1]

    def at(self, time: float) -> np.ndarray:
        """State at the recorded instant closest to ``time``."""
        index = int(np.argmin(np.abs(self.times - time)))
        return self.states[index]

    def series(self, column: int) -> np.ndarray:
        """One column of the recorded states as a time series."""
        return self.states[:, column]


class _ImplicitStepper:
    """Shared stepping core: one cached LU factor, 1-D or 2-D states.

    Subclasses provide the factorization and the right-hand side of
    their implicit update.  ``step`` accepts either a single state
    vector of shape ``(n,)`` or a batch matrix of shape ``(n, K)``
    whose columns are independent scenarios; SuperLU solves every
    column against the same factorization, and each column's result is
    bitwise identical to stepping it alone.
    """

    order: int = 0
    method: str = ""
    #: Backend factorization of the implicit system matrix, built by
    #: the subclass ``_factorize`` through :attr:`backend`.
    _factor: Factor

    def __init__(self, network: ThermalNetwork, dt: float,
                 backend: Optional[str] = None) -> None:
        if dt <= 0:
            raise SolverError("dt must be positive")
        self.network = network
        self.dt = float(dt)
        self.backend: LinearBackend = backends.get_backend(backend)
        with obs.span("solver.transient.factorize", method=self.method,
                      n_nodes=network.n_nodes, dt=self.dt,
                      backend=self.backend.name):
            self._factorize(network)
        _MATRIX_BUILDS.inc()

    def _factorize(self, network: ThermalNetwork) -> None:
        raise NotImplementedError

    def _rhs(self, x: np.ndarray, p_now: np.ndarray,
             p_next: Optional[np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def _solve_columns(self, rhs: np.ndarray) -> np.ndarray:
        """Solve a multi-column RHS under the backend's contract.

        For bitwise backends each column is solved separately against
        the shared factorization — the exact serial operation
        sequence, because SuperLU's blocked multi-RHS kernel cannot be
        certified bitwise (on a 400-node EV6 grid a blocked K=8 solve
        tracks the per-column results for ~400 steps and then rounds
        one element differently; the divergence is value-dependent).
        Tolerance backends route through their blocked kernels and the
        "batch column == stepping that scenario alone" guarantee
        weakens to the backend's documented rtol envelope.
        """
        return self._factor.solve_columns(rhs)

    def step(self, x: np.ndarray, p_now: np.ndarray,
             p_next: Optional[np.ndarray] = None) -> np.ndarray:
        """One time step from state(s) ``x`` under the given power(s)."""
        rhs = self._rhs(x, p_now, p_next)
        _STEPS.inc()
        if rhs.ndim == 2:
            return self._solve_columns(rhs)
        return self._factor.solve(rhs)

    def effective_power(self, p_now: np.ndarray,
                        p_next: np.ndarray) -> np.ndarray:
        """The power term this method's RHS adds for one step.

        Vectorizes over any leading axes (elementwise, so precomputing
        a whole block of steps at once is bitwise identical to the
        per-step expression in ``_rhs``).
        """
        raise NotImplementedError

    def step_effective(self, x: np.ndarray,
                       p_eff: np.ndarray) -> np.ndarray:
        """Batched step with a precomputed :meth:`effective_power` term.

        The hot loop of :mod:`repro.solver.batched`: identical numbers
        to :meth:`step`, minus the per-step power arithmetic.
        """
        rhs = self._rhs_state(x)
        rhs += p_eff
        _STEPS.inc()
        if rhs.ndim == 2:
            return self._solve_columns(rhs)
        return self._factor.solve(rhs)

    def _rhs_state(self, x: np.ndarray) -> np.ndarray:
        """The state-dependent part of the RHS (a fresh, writable array)."""
        raise NotImplementedError


class TrapezoidalStepper(_ImplicitStepper):
    """Crank-Nicolson stepper with a cached LU factorization.

    Advances ``(C/dt + A/2) x' = (C/dt - A/2) x + (p + p')/2``.
    """

    order = 2
    method = "trapezoidal"

    def _factorize(self, network: ThermalNetwork) -> None:
        c_over_dt = sparse.diags(network.capacitance / self.dt)
        a = network.system_matrix
        self._factor = self.backend.factorize((c_over_dt + 0.5 * a).tocsc())
        self._rhs_matrix = (c_over_dt - 0.5 * a).tocsr()

    def _rhs(self, x: np.ndarray, p_now: np.ndarray,
             p_next: Optional[np.ndarray]) -> np.ndarray:
        if p_next is None:
            p_next = p_now
        if x.ndim == 2:
            out = self.backend.matvec(self._rhs_matrix, x)
            out += 0.5 * (p_now + p_next)
            return out
        return self._rhs_matrix @ x + 0.5 * (p_now + p_next)

    def effective_power(self, p_now: np.ndarray,
                        p_next: np.ndarray) -> np.ndarray:
        return 0.5 * (p_now + p_next)

    def _rhs_state(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 2:
            return self.backend.matvec(self._rhs_matrix, x)
        return np.asarray(self._rhs_matrix @ x)


class BackwardEulerStepper(_ImplicitStepper):
    """Backward Euler stepper with a cached LU factorization.

    Advances ``(C/dt + A) x' = (C/dt) x + p'``.
    """

    order = 1
    method = "backward_euler"

    def _factorize(self, network: ThermalNetwork) -> None:
        self._c_over_dt = network.capacitance / self.dt
        a = network.system_matrix
        self._factor = self.backend.factorize(
            (sparse.diags(self._c_over_dt) + a).tocsc()
        )

    def _rhs(self, x: np.ndarray, p_now: np.ndarray,
             p_next: Optional[np.ndarray]) -> np.ndarray:
        p_end = p_now if p_next is None else p_next
        if x.ndim == 2:
            return self._c_over_dt[:, None] * x + p_end
        return self._c_over_dt * x + p_end

    def effective_power(self, p_now: np.ndarray,
                        p_next: np.ndarray) -> np.ndarray:
        return np.asarray(p_next)

    def _rhs_state(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 2:
            return self._c_over_dt[:, None] * x
        return self._c_over_dt * x


_STEPPERS = {
    "trapezoidal": TrapezoidalStepper,
    "backward_euler": BackwardEulerStepper,
}


def stepper_class(method: str) -> Any:
    """The stepper class registered under ``method``."""
    try:
        return _STEPPERS[method]
    except KeyError:
        raise SolverError(
            f"unknown method {method!r}; pick from {sorted(_STEPPERS)}"
        ) from None


def transient_simulate(
    network: ThermalNetwork,
    power: PowerInput,
    t_end: float,
    dt: float,
    x0: Optional[np.ndarray] = None,
    method: str = "trapezoidal",
    record_every: int = 1,
    projector: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    backend: Optional[str] = None,
) -> TransientResult:
    """Integrate the network from ``x0`` to ``t_end``.

    Parameters
    ----------
    power:
        Either a constant node power vector or a callable ``p(t)``
        evaluated at step boundaries.
    t_end, dt:
        Simulation horizon and fixed step size, seconds.  When ``dt``
        does not divide ``t_end``, the run finishes with one exact
        partial step so the recorded horizon is always ``t_end``.
    x0:
        Initial temperature-rise state (zeros = everything at ambient).
    method:
        ``"trapezoidal"`` or ``"backward_euler"``.
    record_every:
        Record every N-th step (plus the initial and final states).
    projector:
        Optional reduction applied to each recorded state (e.g.
        ``model.block_rise``) so long runs don't store full node fields.
    backend:
        Linear-algebra backend name (see :mod:`repro.solver.backends`);
        ``None`` follows the documented selection precedence.
    """
    if record_every < 1:
        raise SolverError("record_every must be >= 1")
    stepper_cls = stepper_class(method)
    n_full, dt_final = plan_fixed_steps(t_end, dt)
    stepper = stepper_cls(network, dt, backend=backend)

    n_steps = n_full + (1 if dt_final is not None else 0)
    def checked_power(values: Any, t: float) -> np.ndarray:
        vector = np.asarray(values, dtype=float)
        if vector.shape != (network.n_nodes,):
            raise SolverError(
                f"power vector at t={t:g} has shape {vector.shape}, "
                f"expected ({network.n_nodes},)"
            )
        if not np.all(np.isfinite(vector)):
            raise SolverError(
                f"power vector at t={t:g} contains non-finite values "
                "(NaN/Inf); check the power schedule before simulating"
            )
        return vector

    if callable(power):
        schedule = power
        power_at = lambda t: checked_power(schedule(t), t)  # noqa: E731
    else:
        constant = checked_power(power, 0.0)
        power_at = lambda _t: constant  # noqa: E731 - trivial closure

    x = np.zeros(network.n_nodes) if x0 is None else np.asarray(x0, float).copy()
    if x.shape != (network.n_nodes,):
        raise SolverError(f"x0 has shape {x.shape}, expected ({network.n_nodes},)")
    if not np.all(np.isfinite(x)):
        raise SolverError("x0 contains non-finite values (NaN/Inf)")

    def observe(state: np.ndarray) -> np.ndarray:
        return projector(state) if projector is not None else state.copy()

    times: List[float] = [0.0]
    records: List[np.ndarray] = [observe(x)]
    p_now = np.asarray(power_at(0.0), dtype=float)
    with obs.span("solver.transient.simulate", method=method,
                  n_steps=n_steps, dt=dt, n_nodes=network.n_nodes):
        for step_index in range(1, n_full + 1):
            t_next = step_index * dt
            p_next = np.asarray(power_at(t_next), dtype=float)
            x = stepper.step(x, p_now, p_next)
            p_now = p_next
            if step_index % record_every == 0 or step_index == n_steps:
                times.append(t_next)
                records.append(observe(x))
        if dt_final is not None:
            # exact final partial step: a misaligned dt must not
            # silently shrink or stretch the simulated horizon
            final_stepper = stepper_cls(network, dt_final, backend=backend)
            p_next = np.asarray(power_at(t_end), dtype=float)
            x = final_stepper.step(x, p_now, p_next)
            times.append(t_end)
            records.append(observe(x))
    states = np.vstack(records) if records[0].ndim else np.asarray(records)
    return TransientResult(times=np.asarray(times), states=states)


def transient_step_response(
    network: ThermalNetwork,
    node_power: np.ndarray,
    t_end: float,
    dt: float,
    **kwargs: Any,
) -> TransientResult:
    """Step response from ambient: constant power applied at t = 0."""
    return transient_simulate(network, node_power, t_end, dt, x0=None, **kwargs)
