"""Transient solution of thermal RC networks.

Integrates ``C dx/dt = P(t) - A x`` with A-stable implicit one-step
methods.  Because ``A`` and ``C`` are constant, the implicit system
matrix is factorized once per (network, dt) and reused across all steps,
which keeps millisecond-resolution, multi-second simulations (paper
Figs. 6, 8, 12) fast.

Two steppers are provided:

* :class:`TrapezoidalStepper` (Crank-Nicolson) -- second order, the
  default; matches HotSpot's transient accuracy goals.
* :class:`BackwardEulerStepper` -- first order, L-stable; useful to
  damp the start-up transient of stiff configurations and as a
  cross-check of the trapezoidal results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Union

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from .. import obs
from ..errors import SolverError
from ..rcmodel.network import ThermalNetwork

PowerInput = Union[np.ndarray, Callable[[float], np.ndarray]]

_MATRIX_BUILDS = obs.metrics().counter("solver.transient.matrix_builds")
_STEPS = obs.metrics().counter("solver.transient.steps")


@dataclass
class TransientResult:
    """Recorded trajectory of a transient simulation.

    ``states`` holds one row per recorded instant; if a projector was
    given to the simulation, rows are projector outputs (e.g. per-block
    rises), otherwise full node rise vectors.
    """

    times: np.ndarray
    states: np.ndarray

    def final(self) -> np.ndarray:
        """State at the last recorded instant."""
        return self.states[-1]

    def at(self, time: float) -> np.ndarray:
        """State at the recorded instant closest to ``time``."""
        index = int(np.argmin(np.abs(self.times - time)))
        return self.states[index]

    def series(self, column: int) -> np.ndarray:
        """One column of the recorded states as a time series."""
        return self.states[:, column]


class TrapezoidalStepper:
    """Crank-Nicolson stepper with a cached LU factorization.

    Advances ``(C/dt + A/2) x' = (C/dt - A/2) x + (p + p')/2``.
    """

    order = 2

    def __init__(self, network: ThermalNetwork, dt: float) -> None:
        if dt <= 0:
            raise SolverError("dt must be positive")
        self.network = network
        self.dt = float(dt)
        with obs.span("solver.transient.factorize", method="trapezoidal",
                      n_nodes=network.n_nodes, dt=self.dt):
            c_over_dt = sparse.diags(network.capacitance / self.dt)
            a = network.system_matrix
            self._lhs = splu((c_over_dt + 0.5 * a).tocsc())
            self._rhs_matrix = (c_over_dt - 0.5 * a).tocsr()
        _MATRIX_BUILDS.inc()

    def step(self, x: np.ndarray, p_now: np.ndarray,
             p_next: Optional[np.ndarray] = None) -> np.ndarray:
        """One time step from state ``x`` under the given power(s)."""
        if p_next is None:
            p_next = p_now
        rhs = self._rhs_matrix @ x + 0.5 * (p_now + p_next)
        _STEPS.inc()
        return self._lhs.solve(rhs)


class BackwardEulerStepper:
    """Backward Euler stepper with a cached LU factorization.

    Advances ``(C/dt + A) x' = (C/dt) x + p'``.
    """

    order = 1

    def __init__(self, network: ThermalNetwork, dt: float) -> None:
        if dt <= 0:
            raise SolverError("dt must be positive")
        self.network = network
        self.dt = float(dt)
        with obs.span("solver.transient.factorize", method="backward_euler",
                      n_nodes=network.n_nodes, dt=self.dt):
            self._c_over_dt = network.capacitance / self.dt
            a = network.system_matrix
            self._lhs = splu((sparse.diags(self._c_over_dt) + a).tocsc())
        _MATRIX_BUILDS.inc()

    def step(self, x: np.ndarray, p_now: np.ndarray,
             p_next: Optional[np.ndarray] = None) -> np.ndarray:
        """One time step from state ``x`` under the given power(s)."""
        p_end = p_now if p_next is None else p_next
        rhs = self._c_over_dt * x + p_end
        _STEPS.inc()
        return self._lhs.solve(rhs)


_STEPPERS = {
    "trapezoidal": TrapezoidalStepper,
    "backward_euler": BackwardEulerStepper,
}


def transient_simulate(
    network: ThermalNetwork,
    power: PowerInput,
    t_end: float,
    dt: float,
    x0: Optional[np.ndarray] = None,
    method: str = "trapezoidal",
    record_every: int = 1,
    projector: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> TransientResult:
    """Integrate the network from ``x0`` to ``t_end``.

    Parameters
    ----------
    power:
        Either a constant node power vector or a callable ``p(t)``
        evaluated at step boundaries.
    t_end, dt:
        Simulation horizon and fixed step size, seconds.
    x0:
        Initial temperature-rise state (zeros = everything at ambient).
    method:
        ``"trapezoidal"`` or ``"backward_euler"``.
    record_every:
        Record every N-th step (plus the initial and final states).
    projector:
        Optional reduction applied to each recorded state (e.g.
        ``model.block_rise``) so long runs don't store full node fields.
    """
    if t_end <= 0:
        raise SolverError("t_end must be positive")
    if record_every < 1:
        raise SolverError("record_every must be >= 1")
    try:
        stepper_cls = _STEPPERS[method]
    except KeyError:
        raise SolverError(
            f"unknown method {method!r}; pick from {sorted(_STEPPERS)}"
        ) from None
    stepper = stepper_cls(network, dt)

    n_steps = int(round(t_end / dt))
    if n_steps < 1:
        raise SolverError("t_end shorter than one step")
    if callable(power):
        power_at = power
    else:
        constant = np.asarray(power, dtype=float)
        power_at = lambda _t: constant  # noqa: E731 - trivial closure

    x = np.zeros(network.n_nodes) if x0 is None else np.asarray(x0, float).copy()
    if x.shape != (network.n_nodes,):
        raise SolverError(f"x0 has shape {x.shape}, expected ({network.n_nodes},)")

    def observe(state: np.ndarray) -> np.ndarray:
        return projector(state) if projector is not None else state.copy()

    times: List[float] = [0.0]
    records: List[np.ndarray] = [observe(x)]
    p_now = np.asarray(power_at(0.0), dtype=float)
    with obs.span("solver.transient.simulate", method=method,
                  n_steps=n_steps, dt=dt, n_nodes=network.n_nodes):
        for step_index in range(1, n_steps + 1):
            t_next = step_index * dt
            p_next = np.asarray(power_at(t_next), dtype=float)
            x = stepper.step(x, p_now, p_next)
            p_now = p_next
            if step_index % record_every == 0 or step_index == n_steps:
                times.append(t_next)
                records.append(observe(x))
    states = np.vstack(records) if records[0].ndim else np.asarray(records)
    return TransientResult(times=np.asarray(times), states=states)


def transient_step_response(
    network: ThermalNetwork,
    node_power: np.ndarray,
    t_end: float,
    dt: float,
    **kwargs: Any,
) -> TransientResult:
    """Step response from ambient: constant power applied at t = 0."""
    return transient_simulate(network, node_power, t_end, dt, x0=None, **kwargs)
