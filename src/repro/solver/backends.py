"""Pluggable linear-algebra backends for the solver hot loop.

Every solver engine — steady, transient, adaptive, batched — reduces to
the same three operations on the (constant) implicit system matrix:
factorize once, back-solve many times (one RHS or a lockstep batch of
columns), and multiply by a sparse matrix when assembling the RHS.
This module narrows that surface to a :class:`LinearBackend` protocol
so faster linear algebra can compete under an explicit contract:

* ``bitwise=True`` backends promise results bitwise identical
  (``np.array_equal``) to the historical SuperLU column-by-column
  path, including the "batch column == stepping that scenario alone"
  guarantee of DESIGN.md §5.4.
* ``bitwise=False`` backends promise agreement with the
  ``superlu-serial`` reference only within their declared ``rtol``
  envelope, in exchange for speed (blocked multi-RHS kernels, SPD
  Cholesky-style eliminations, dense LAPACK for small grids).

Backend selection precedence (first match wins):

1. an explicit ``backend=`` argument on the solver entry point;
2. the innermost active :func:`backend_override` context (how
   ``CampaignSpec.backend`` is scoped around job execution);
3. the ``REPRO_SOLVER_BACKEND`` environment variable;
4. the default, :data:`DEFAULT_BACKEND` (``superlu-serial``).

Factorization failures of any backend (singular SuperLU
``RuntimeError``, LAPACK/``numpy`` ``LinAlgError`` on indefinite
input, scipy validation ``ValueError``) are normalized to
:class:`~repro.errors.SolverError` at the protocol boundary, so
callers see one exception type regardless of the engine underneath.
"""

from __future__ import annotations

import contextlib
import os
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np
from scipy import linalg as dense_linalg
from scipy import sparse
from scipy.sparse.linalg import splu

from .. import obs
from ..errors import SolverError

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_SOLVER_BACKEND"

#: The bitwise-faithful extraction of the historical solver path.
DEFAULT_BACKEND = "superlu-serial"

try:
    from scipy.sparse import _sparsetools as _scipy_sparsetools

    def csr_matvecs(matrix: Any, x: np.ndarray) -> np.ndarray:
        """``matrix @ x`` for 2-D ``x`` without operator-dispatch cost.

        Calls the same C kernel scipy's ``@`` runs (``csr_matvecs``),
        which accumulates each output column in exactly the single-
        vector order — so column ``k`` is bitwise ``matrix @ x[:, k]``.
        The batched stepping loop calls this every step, where the
        public operator's per-call validation would dominate on small
        grids.
        """
        n_row, n_col = matrix.shape
        n_vecs = x.shape[1]
        x = np.ascontiguousarray(x)
        out = np.zeros((n_row, n_vecs))
        _scipy_sparsetools.csr_matvecs(
            n_row, n_col, n_vecs, matrix.indptr, matrix.indices,
            matrix.data, x.ravel(), out.ravel(),
        )
        return out
except ImportError:  # pragma: no cover - scipy layout changed
    def csr_matvecs(matrix: Any, x: np.ndarray) -> np.ndarray:
        return matrix @ x


class Factor:
    """A factorization of one system matrix, ready for repeated solves."""

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-solve one right-hand-side vector ``(n,)``."""
        raise NotImplementedError

    def solve_columns(self, rhs: np.ndarray) -> np.ndarray:
        """Back-solve a multi-column RHS ``(n, K)``.

        The base implementation solves column by column against the
        shared factorization — the exact serial operation sequence, so
        ``solve_columns(rhs)[:, k]`` is bitwise ``solve(rhs[:, k])``
        by construction (the contract ``bitwise=True`` backends rely
        on; see DESIGN.md §5.4 for why SuperLU's blocked multi-RHS
        kernel cannot be certified bitwise).  Tolerance backends
        override this with blocked kernels.
        """
        rhs = np.asfortranarray(rhs)  # column slices become copy-free views
        out = np.empty(rhs.shape)  # C order: the next RHS ravels for free
        for k in range(rhs.shape[1]):
            out[:, k] = self.solve(rhs[:, k])
        return out


class _SuperLUFactor(Factor):
    """Wraps a SuperLU object; inherits the bitwise column loop."""

    def __init__(self, lu: Any) -> None:
        self._lu = lu

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._lu.solve(rhs)


class _BlockedSuperLUFactor(_SuperLUFactor):
    """SuperLU factor that routes multi-RHS solves through the blocked
    kernel (faster, but only per-column-close, not bitwise)."""

    def solve_columns(self, rhs: np.ndarray) -> np.ndarray:
        return np.asarray(self._lu.solve(np.asfortranarray(rhs)))


class _DenseCholeskyFactor(Factor):
    """LAPACK ``cho_factor`` result; ``cho_solve`` handles multi-RHS
    natively, which is the whole point of this backend."""

    def __init__(self, c_and_lower: Tuple[np.ndarray, bool]) -> None:
        self._c_and_lower = c_and_lower

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return np.asarray(dense_linalg.cho_solve(self._c_and_lower, rhs))

    def solve_columns(self, rhs: np.ndarray) -> np.ndarray:
        return np.asarray(dense_linalg.cho_solve(self._c_and_lower, rhs))


class LinearBackend:
    """One linear-algebra engine behind the solver hot loop.

    Subclasses implement :meth:`_factorize`; the public
    :meth:`factorize` adds the span, the per-backend counter, and the
    :class:`SolverError` normalization every backend shares.
    """

    #: Registry key, CLI/env spelling, and campaign-hash component.
    name: str = ""
    #: True iff results are bitwise identical to ``superlu-serial``.
    bitwise: bool = False
    #: Documented agreement envelope vs the reference backend
    #: (0.0 for bitwise backends).
    rtol: float = 0.0

    def cache_key(self) -> str:
        """Identity component for factor caches: a factor produced by
        one backend must never be served to another."""
        return self.name

    def factorize(self, matrix: sparse.spmatrix) -> Factor:
        """Factorize an SPD sparse system matrix, or raise SolverError."""
        with obs.span("solver.backend.factorize", backend=self.name,
                      n_nodes=matrix.shape[0], nnz=int(matrix.nnz)):
            try:
                factor = self._factorize(matrix)
            except SolverError:
                raise
            except (RuntimeError, ValueError, ArithmeticError) as exc:
                # RuntimeError: SuperLU singular-matrix (and Arpack-
                # family) errors; ValueError: scipy input validation.
                raise SolverError(
                    f"backend {self.name!r} factorization failed: {exc}"
                ) from exc
            except np.linalg.LinAlgError as exc:
                # A ValueError subclass on recent numpy, but derives
                # straight from Exception on older releases — name it
                # explicitly so the 3.9 CI lane normalizes it too.
                raise SolverError(
                    f"backend {self.name!r} factorization failed: {exc}"
                ) from exc
        obs.metrics().counter(
            f"solver.backend.{self.name}.factorizations"
        ).inc()
        return factor

    def _factorize(self, matrix: sparse.spmatrix) -> Factor:
        raise NotImplementedError

    def matvec(self, matrix: Any, x: np.ndarray) -> np.ndarray:
        """``matrix @ x`` for RHS assembly, 1-D or column-batched 2-D.

        The default routes 2-D products through the per-column C
        kernel so batch columns stay bitwise equal to their serial
        counterparts.
        """
        if x.ndim == 2:
            return csr_matvecs(matrix, x)
        return np.asarray(matrix @ x)


def _check_symmetric(matrix: sparse.spmatrix, name: str) -> None:
    """Reject matrices a symmetric-only elimination would silently
    mis-solve (Cholesky reads one triangle; asymmetry must be an
    error, not an answer)."""
    asym = (matrix - matrix.T).tocoo()
    if asym.nnz == 0:
        return
    scale = float(np.max(np.abs(matrix.data))) if matrix.nnz else 0.0
    worst = float(np.max(np.abs(asym.data)))
    if worst > 1e-12 * max(scale, 1.0):
        raise SolverError(
            f"backend {name!r} requires a symmetric matrix; "
            f"max |A - A^T| = {worst:.3e}"
        )


class SuperLUSerialBackend(LinearBackend):
    """The historical solver path, extracted verbatim.

    Plain ``splu`` with scipy defaults plus the column-by-column
    back-solve loop: bitwise identical to the pre-backend engines by
    construction, and therefore the default.
    """

    name = "superlu-serial"
    bitwise = True
    rtol = 0.0

    def _factorize(self, matrix: sparse.spmatrix) -> Factor:
        return _SuperLUFactor(splu(matrix.tocsc()))


class SparseCholeskyBackend(LinearBackend):
    """SPD sparse Cholesky-like elimination (SuperLU symmetric mode).

    scipy ships no sparse Cholesky, but SuperLU's symmetric mode with
    diagonal pivoting disabled performs the equivalent LDL^T-style
    elimination on an SPD matrix with a symmetric fill-reducing
    ordering.  A symmetry precheck and a positive-pivot postcheck make
    indefinite input a :class:`SolverError` instead of a wrong answer.
    Multi-RHS solves use the blocked kernel, so results carry a
    tolerance contract rather than a bitwise one.
    """

    name = "cholesky"
    bitwise = False
    rtol = 1e-9

    def _factorize(self, matrix: sparse.spmatrix) -> Factor:
        matrix = matrix.tocsc()
        _check_symmetric(matrix, self.name)
        lu = splu(
            matrix,
            permc_spec="MMD_AT_PLUS_A",
            diag_pivot_thresh=0.0,
            options=dict(SymmetricMode=True),
        )
        if not np.all(lu.U.diagonal() > 0.0):
            raise SolverError(
                f"backend {self.name!r} requires a positive definite "
                "matrix; elimination produced a non-positive pivot"
            )
        return _BlockedSuperLUFactor(lu)


class DenseCholeskyBackend(LinearBackend):
    """Dense LAPACK Cholesky (``cho_factor`` / ``cho_solve``).

    O(n^3) factorization and O(n^2) storage — the win is the true
    multi-RHS ``cho_solve``, which amortizes beautifully for small
    grids and large scenario counts K.  Keep it off large grids.
    """

    name = "dense"
    bitwise = False
    rtol = 1e-9

    def _factorize(self, matrix: sparse.spmatrix) -> Factor:
        matrix = matrix.tocsc()
        _check_symmetric(matrix, self.name)
        dense = matrix.toarray()
        if not np.all(np.isfinite(dense)):
            raise SolverError(
                f"backend {self.name!r}: matrix contains non-finite entries"
            )
        c, lower = dense_linalg.cho_factor(dense)
        return _DenseCholeskyFactor((c, lower))


_REGISTRY: Dict[str, LinearBackend] = {}

#: Dynamic-scope override installed by :func:`backend_override`; a
#: ContextVar so concurrent campaign threads/tasks cannot observe each
#: other's selection.
_OVERRIDE: ContextVar[Optional[str]] = ContextVar(
    "repro_solver_backend_override", default=None
)


def register_backend(backend: LinearBackend) -> LinearBackend:
    """Add a backend instance to the registry (name must be unique)."""
    if not backend.name:
        raise SolverError("backend must declare a non-empty name")
    if backend.name in _REGISTRY:
        raise SolverError(
            f"backend {backend.name!r} is already registered"
        )
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: Optional[str] = None) -> LinearBackend:
    """Resolve a backend by the documented precedence.

    ``name=None`` consults the :func:`backend_override` context, then
    the ``REPRO_SOLVER_BACKEND`` environment variable, then the
    default.  Unknown names raise :class:`SolverError`.
    """
    if name is None:
        name = _OVERRIDE.get()
    if name is None:
        name = os.environ.get(ENV_VAR) or None
    if name is None:
        name = DEFAULT_BACKEND
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SolverError(
            f"unknown solver backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None


@contextlib.contextmanager
def backend_override(name: str) -> Iterator[LinearBackend]:
    """Scope a backend selection over a dynamic extent.

    Explicit ``backend=`` arguments still win inside the scope; the
    override only changes what ``backend=None`` resolves to.  Used by
    the campaign executor to apply ``CampaignSpec.backend`` around job
    execution without threading the name through every call.
    """
    backend = get_backend(name)  # validate eagerly, before any work runs
    token = _OVERRIDE.set(backend.name)
    try:
        yield backend
    finally:
        _OVERRIDE.reset(token)


register_backend(SuperLUSerialBackend())
register_backend(SparseCholeskyBackend())
register_backend(DenseCholeskyBackend())
