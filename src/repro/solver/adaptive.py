"""Error-controlled adaptive transient integration.

The fixed-step trapezoidal solver is ideal when the power input sets
the natural step (trace-driven runs).  For free-running studies that
cross several time scales at once -- e.g. an AIR-SINK warm-up, where
milliseconds matter early (the silicon mode) and nothing changes for
seconds late (the sink mode) -- a fixed step wastes work.  This module
integrates with step doubling: each step is taken once at ``dt`` and
again as two halves; the Richardson difference estimates the local
error, rejecting and shrinking when above tolerance and growing the
step when comfortably below.

Factorizations are cached per step size (quantized to a geometric
ladder), so the adaptive run reuses a handful of LU factors rather
than refactoring every adjustment.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..errors import SolverError
from ..rcmodel.network import ThermalNetwork
from .transient import BackwardEulerStepper, TransientResult

PowerInput = Union[np.ndarray, Callable[[float], np.ndarray]]

#: Steps are quantized to this geometric ladder (relative to dt_min) so
#: the LU cache stays small.
_LADDER_BASE = 2.0

#: A final residual below this fraction of the pending step is float
#: accumulation residue, not physics: it is absorbed into the last
#: accepted step instead of paying a factorization for a sliver.
_SLIVER_FRACTION = 1e-9

#: Relative tolerance for reusing an existing factor for the final
#: partial step instead of building a fresh one.
_FACTOR_MATCH_RTOL = 1e-9


class AdaptiveTransientSolver:
    """Step-doubling adaptive integrator over a thermal network.

    Parameters
    ----------
    network:
        The thermal RC network.
    rtol, atol:
        Local error tolerances (on the temperature-rise vector, K).
    dt_min, dt_max:
        Step-size bounds, seconds.
    backend:
        Linear-algebra backend name (see :mod:`repro.solver.backends`);
        ``None`` follows the documented selection precedence.
    """

    def __init__(
        self,
        network: ThermalNetwork,
        rtol: float = 1e-3,
        atol: float = 1e-3,
        dt_min: float = 1e-5,
        dt_max: float = 10.0,
        backend: Optional[str] = None,
    ) -> None:
        if dt_min <= 0 or dt_max <= dt_min:
            raise SolverError("need 0 < dt_min < dt_max")
        if rtol <= 0 or atol <= 0:
            raise SolverError("tolerances must be positive")
        self.network = network
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.dt_min = float(dt_min)
        self.dt_max = float(dt_max)
        self.backend = backend
        self._steppers: Dict[int, BackwardEulerStepper] = {}
        self._final_steppers: Dict[float, BackwardEulerStepper] = {}

    def _stepper(self, rung: int) -> BackwardEulerStepper:
        if rung not in self._steppers:
            self._steppers[rung] = BackwardEulerStepper(
                self.network, self.dt_min * _LADDER_BASE ** rung,
                backend=self.backend,
            )
        return self._steppers[rung]

    def _final_stepper(self, dt_final: float) -> BackwardEulerStepper:
        """A stepper for exactly ``dt_final``, reusing cached factors.

        A ladder (or previously built final) factor whose step matches
        within :data:`_FACTOR_MATCH_RTOL` is reused outright — the
        relative horizon error it introduces is far below the solver
        tolerances — and genuinely new final sizes are cached so
        repeated integrations over the same horizon factorize once.
        """
        for stepper in self._steppers.values():
            if abs(stepper.dt - dt_final) <= _FACTOR_MATCH_RTOL * stepper.dt:
                return stepper
        for stepper in self._final_steppers.values():
            if abs(stepper.dt - dt_final) <= _FACTOR_MATCH_RTOL * stepper.dt:
                return stepper
        stepper = BackwardEulerStepper(
            self.network, dt_final, backend=self.backend
        )
        self._final_steppers[dt_final] = stepper
        return stepper

    def _rung_for(self, dt: float) -> int:
        rung = int(np.floor(np.log(dt / self.dt_min) / np.log(_LADDER_BASE)))
        max_rung = int(np.floor(
            np.log(self.dt_max / self.dt_min) / np.log(_LADDER_BASE)
        ))
        return min(max(rung, 0), max_rung)

    def integrate(
        self,
        power: PowerInput,
        t_end: float,
        x0: Optional[np.ndarray] = None,
        projector: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        initial_dt: Optional[float] = None,
    ) -> TransientResult:
        """Integrate from 0 to ``t_end`` with adaptive steps.

        Records the state after every accepted step (projector applied
        if given).  Backward Euler is first order, so the Richardson
        estimate of the local error is simply the difference between
        the full step and the two half steps.
        """
        if t_end <= 0:
            raise SolverError("t_end must be positive")
        if callable(power):
            power_at = power
        else:
            constant = np.asarray(power, dtype=float)
            if constant.shape != (self.network.n_nodes,):
                raise SolverError(
                    f"power vector has shape {constant.shape}, expected "
                    f"({self.network.n_nodes},)"
                )
            power_at = lambda _t: constant  # noqa: E731
        x = np.zeros(self.network.n_nodes) if x0 is None \
            else np.asarray(x0, float).copy()
        if x.shape != (self.network.n_nodes,):
            raise SolverError("x0 has the wrong length")

        def observe(state: np.ndarray) -> np.ndarray:
            return projector(state) if projector is not None \
                else state.copy()

        if initial_dt is None:
            initial_dt = 100 * self.dt_min
        else:
            initial_dt = float(initial_dt)
            if initial_dt <= 0:
                raise SolverError("initial_dt must be positive")
            if initial_dt > self.dt_max:
                raise SolverError(
                    f"initial_dt {initial_dt:g} exceeds dt_max {self.dt_max:g}"
                )

        times: List[float] = [0.0]
        records: List[np.ndarray] = [observe(x)]
        now = 0.0
        eps = 1e-12 * max(1.0, t_end)
        rung = self._rung_for(initial_dt)
        max_rejects = 60
        while now < t_end - eps:
            rejects = 0
            while True:
                stepper = self._stepper(rung)
                dt = stepper.dt
                if now + dt > t_end - eps:
                    # final partial step: fixed, not error-controlled.
                    # Clamp the residual against float accumulation;
                    # absorb slivers into the last accepted step rather
                    # than factorizing for (or crashing on) them.
                    residual = t_end - now
                    if residual <= max(_SLIVER_FRACTION * dt, eps):
                        now = t_end
                        break
                    final = self._final_stepper(residual)
                    p = np.asarray(power_at(t_end), float)
                    x = final.step(x, p)
                    now = t_end
                    break
                p_mid = np.asarray(power_at(now + dt / 2.0), float)
                p_end = np.asarray(power_at(now + dt), float)
                full = stepper.step(x, p_end)
                if rung > 0:
                    half_stepper = self._stepper(rung - 1)
                    half = half_stepper.step(x, p_mid)
                    half = half_stepper.step(half, p_end)
                    scale = self.atol + self.rtol * np.maximum(
                        np.abs(half), np.abs(x)
                    )
                    error = float(np.max(np.abs(full - half) / scale))
                else:
                    half = full
                    error = 0.0
                if error <= 1.0:
                    # accept the (more accurate) half-step result
                    x = half
                    now += dt
                    if error < 0.25:
                        rung = self._rung_for(dt * _LADDER_BASE)
                    break
                rejects += 1
                if rung == 0 or rejects > max_rejects:
                    raise SolverError(
                        "adaptive integrator cannot meet the tolerance "
                        "even at dt_min"
                    )
                rung -= 1
            times.append(now)
            records.append(observe(x))
        return TransientResult(
            times=np.asarray(times), states=np.vstack(records)
        )
