"""Alpha EV6 (21264)-like floorplan.

The paper's Sections 4 and 5 run every EV6 experiment on the 18-block
floorplan that ships with HotSpot (``ev6.flp``).  We reproduce the same
topology on a 16 mm x 16 mm die:

* the L2 cache occupies the bottom of the die plus two tall banks on the
  left and right edges,
* the I-cache and D-cache sit above the L2 in the middle band,
* a thin row of small units (Bpred, DTB, FPAdd, FPReg, FPMul, FPMap)
  separates the caches from the core,
* the integer core (IntMap, IntQ, FPQ, LdStQ, IntReg, IntExec, ITB)
  occupies the top band, with **IntReg adjacent to the top die edge** --
  this adjacency is what makes a top-to-bottom oil flow cool IntReg so
  well that Dcache becomes the hottest unit (paper Fig. 11).

The tiling is exact (blocks cover the die with no gaps or overlaps), so
grid mapping needs no filler cells.
"""

from __future__ import annotations

from typing import List

from ..units import mm
from .block import Block, Floorplan

#: The 18 block names, in the order the paper's Fig. 11 table lists them.
EV6_BLOCK_NAMES = [
    "L2_left",
    "L2",
    "L2_right",
    "Icache",
    "Dcache",
    "Bpred",
    "DTB",
    "FPAdd",
    "FPReg",
    "FPMul",
    "FPMap",
    "IntMap",
    "IntQ",
    "IntReg",
    "IntExec",
    "FPQ",
    "LdStQ",
    "ITB",
]

# Geometry in millimeters: (width, height, x, y).
_DIE_MM = 16.0
_GEOMETRY_MM = {
    # L2 ring: bottom slab plus left/right banks.
    "L2": (16.0, 9.8, 0.0, 0.0),
    "L2_left": (4.9, 6.2, 0.0, 9.8),
    "L2_right": (4.9, 6.2, 11.1, 9.8),
    # First-level caches in the middle band.
    "Icache": (3.1, 2.6, 4.9, 9.8),
    "Dcache": (3.1, 2.6, 8.0, 9.8),
    # Thin row of front-end / FP units.
    "Bpred": (31.0 / 30.0, 0.7, 4.9, 12.4),
    "DTB": (31.0 / 30.0, 0.7, 4.9 + 31.0 / 30.0, 12.4),
    "FPAdd": (31.0 / 30.0, 0.7, 4.9 + 2 * 31.0 / 30.0, 12.4),
    "FPReg": (31.0 / 30.0, 0.7, 4.9 + 3 * 31.0 / 30.0, 12.4),
    "FPMul": (31.0 / 30.0, 0.7, 4.9 + 4 * 31.0 / 30.0, 12.4),
    "FPMap": (31.0 / 30.0, 0.7, 4.9 + 5 * 31.0 / 30.0, 12.4),
    # Integer core, lower row.
    "IntMap": (1.55, 1.45, 4.9, 13.1),
    "IntQ": (1.55, 1.45, 6.45, 13.1),
    "FPQ": (1.55, 1.45, 8.0, 13.1),
    "LdStQ": (1.55, 1.45, 9.55, 13.1),
    # Integer core, top row -- IntReg touches the top die edge.  IntReg
    # is deliberately small (~1.1 mm^2, like the real 21264's integer
    # register file) so its power density is the highest on the die.
    "IntReg": (0.75, 1.45, 4.9, 14.55),
    "IntExec": (3.65, 1.45, 5.65, 14.55),
    "ITB": (1.8, 1.45, 9.3, 14.55),
}


def ev6_floorplan() -> Floorplan:
    """Build the EV6-like floorplan (16 mm x 16 mm, 18 blocks)."""
    blocks: List[Block] = []
    for name in EV6_BLOCK_NAMES:
        width, height, x, y = _GEOMETRY_MM[name]
        blocks.append(Block(name, mm(width), mm(height), mm(x), mm(y)))
    plan = Floorplan(
        blocks, die_width=mm(_DIE_MM), die_height=mm(_DIE_MM), name="ev6"
    )
    plan.check_non_overlapping()
    return plan
