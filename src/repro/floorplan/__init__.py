"""Floorplan representation and the chip floorplans used by the paper.

A floorplan is a set of named rectangular blocks tiling (part of) a die.
Per-block powers are applied uniformly over each block's area, exactly as
the paper assumes ("we assume uniform power per unit", Section 3.2).
"""

from .block import Block, Floorplan
from .parser import parse_flp, format_flp, load_flp, save_flp
from .ev6 import ev6_floorplan, EV6_BLOCK_NAMES
from .athlon import athlon_floorplan, ATHLON_BLOCK_NAMES, athlon_reference_power
from .synthetic import (
    single_hot_block_floorplan,
    multicore_floorplan,
    checkerboard_floorplan,
    uniform_grid_floorplan,
)
from .grid_map import GridMapping

__all__ = [
    "Block",
    "Floorplan",
    "parse_flp",
    "format_flp",
    "load_flp",
    "save_flp",
    "ev6_floorplan",
    "EV6_BLOCK_NAMES",
    "athlon_floorplan",
    "ATHLON_BLOCK_NAMES",
    "athlon_reference_power",
    "single_hot_block_floorplan",
    "multicore_floorplan",
    "checkerboard_floorplan",
    "uniform_grid_floorplan",
    "GridMapping",
]
