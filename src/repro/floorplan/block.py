"""Blocks and floorplans.

Coordinates follow the HotSpot ``.flp`` convention: the origin is the
bottom-left corner of the die, x grows rightward, y grows upward, and
every block is an axis-aligned rectangle given by its bottom-left corner
plus width and height.  All lengths are meters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from ..units import require_positive


@dataclass(frozen=True)
class Block:
    """A named rectangular functional unit on the die."""

    name: str
    width: float
    height: float
    x: float
    y: float

    def __post_init__(self) -> None:
        if not self.name:
            raise GeometryError("block name must be non-empty")
        require_positive(f"width of block {self.name!r}", self.width)
        require_positive(f"height of block {self.name!r}", self.height)
        if self.x < 0 or self.y < 0:
            raise GeometryError(
                f"block {self.name!r} has negative origin ({self.x}, {self.y})"
            )

    @property
    def area(self) -> float:
        """Block area in m^2."""
        return self.width * self.height

    @property
    def x2(self) -> float:
        """Right edge coordinate."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge coordinate."""
        return self.y + self.height

    @property
    def center(self) -> Tuple[float, float]:
        """(x, y) coordinates of the block center."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def contains(self, x: float, y: float) -> bool:
        """Whether the point (x, y) lies inside this block.

        Points on the bottom/left edges are inside; points on the
        top/right edges are outside, so a gapless tiling assigns every
        point to exactly one block.
        """
        return self.x <= x < self.x2 and self.y <= y < self.y2

    def overlap_area(self, other: "Block") -> float:
        """Area of the intersection with ``other`` (0 if disjoint)."""
        dx = min(self.x2, other.x2) - max(self.x, other.x)
        dy = min(self.y2, other.y2) - max(self.y, other.y)
        if dx <= 0.0 or dy <= 0.0:
            return 0.0
        return dx * dy

    def rect_overlap_area(
        self, x1: float, y1: float, x2: float, y2: float
    ) -> float:
        """Area of the intersection with the rectangle [x1,x2) x [y1,y2)."""
        dx = min(self.x2, x2) - max(self.x, x1)
        dy = min(self.y2, y2) - max(self.y, y1)
        if dx <= 0.0 or dy <= 0.0:
            return 0.0
        return dx * dy


class Floorplan:
    """An ordered collection of blocks on a rectangular die.

    The die dimensions default to the bounding box of the blocks; they can
    be given explicitly when the blocks only cover part of the die.
    Block order is preserved: power vectors and temperature vectors are
    indexed in this order throughout the library.
    """

    def __init__(
        self,
        blocks: Sequence[Block],
        die_width: Optional[float] = None,
        die_height: Optional[float] = None,
        name: str = "floorplan",
    ) -> None:
        if not blocks:
            raise GeometryError("a floorplan needs at least one block")
        names = [b.name for b in blocks]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise GeometryError(f"duplicate block names: {sorted(duplicates)}")
        self._blocks: Tuple[Block, ...] = tuple(blocks)
        self._index: Dict[str, int] = {b.name: i for i, b in enumerate(self._blocks)}
        bound_w = max(b.x2 for b in self._blocks)
        bound_h = max(b.y2 for b in self._blocks)
        self.die_width = float(die_width) if die_width is not None else bound_w
        self.die_height = float(die_height) if die_height is not None else bound_h
        if self.die_width + 1e-12 < bound_w or self.die_height + 1e-12 < bound_h:
            raise GeometryError(
                f"die ({self.die_width} x {self.die_height}) smaller than the "
                f"block bounding box ({bound_w} x {bound_h})"
            )
        self.name = name

    # --- container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, key) -> Block:
        if isinstance(key, str):
            return self._blocks[self._index[key]]
        return self._blocks[key]

    def __repr__(self) -> str:
        return (
            f"Floorplan({self.name!r}, {len(self)} blocks, "
            f"{self.die_width * 1e3:.1f}mm x {self.die_height * 1e3:.1f}mm)"
        )

    # --- queries ---------------------------------------------------------

    @property
    def blocks(self) -> Tuple[Block, ...]:
        """Blocks in index order."""
        return self._blocks

    @property
    def names(self) -> List[str]:
        """Block names in index order."""
        return [b.name for b in self._blocks]

    @property
    def die_area(self) -> float:
        """Die area in m^2."""
        return self.die_width * self.die_height

    @property
    def block_area_total(self) -> float:
        """Sum of block areas in m^2 (== die area for a gapless tiling)."""
        return sum(b.area for b in self._blocks)

    def index_of(self, name: str) -> int:
        """Index of the named block in the floorplan order."""
        return self._index[name]

    def areas(self) -> np.ndarray:
        """Vector of block areas in floorplan order."""
        return np.array([b.area for b in self._blocks])

    def block_at(self, x: float, y: float) -> Optional[Block]:
        """The block containing point (x, y), or None for a gap."""
        for block in self._blocks:
            if block.contains(x, y):
                return block
        return None

    def coverage_fraction(self) -> float:
        """Fraction of die area covered by blocks (pairwise overlaps
        double-count, so validate with :meth:`check_non_overlapping`)."""
        return self.block_area_total / self.die_area

    def check_non_overlapping(self, tolerance: float = 1e-12) -> None:
        """Raise :class:`GeometryError` if any pair of blocks overlaps."""
        for i, a in enumerate(self._blocks):
            for b in self._blocks[i + 1:]:
                area = a.overlap_area(b)
                if area > tolerance:
                    raise GeometryError(
                        f"blocks {a.name!r} and {b.name!r} overlap "
                        f"({area:.3e} m^2)"
                    )

    def power_vector(self, powers: Mapping[str, float]) -> np.ndarray:
        """Convert a name->Watts mapping into a vector in floorplan order.

        Blocks missing from ``powers`` get zero.  Unknown names raise
        KeyError so typos do not silently drop power.
        """
        unknown = set(powers) - set(self._index)
        if unknown:
            raise KeyError(f"power given for unknown blocks: {sorted(unknown)}")
        vector = np.zeros(len(self._blocks))
        for name, watts in powers.items():
            vector[self._index[name]] = float(watts)
        return vector

    def power_dict(self, vector: Sequence[float]) -> Dict[str, float]:
        """Convert a per-block vector into a name->value dict."""
        values = np.asarray(vector, dtype=float)
        if values.shape != (len(self._blocks),):
            raise ValueError(
                f"expected a vector of length {len(self._blocks)}, "
                f"got shape {values.shape}"
            )
        return {b.name: float(values[i]) for i, b in enumerate(self._blocks)}

    def scaled(self, factor: float) -> "Floorplan":
        """A geometrically scaled copy (every length multiplied by factor)."""
        require_positive("scale factor", factor)
        blocks = [
            Block(b.name, b.width * factor, b.height * factor,
                  b.x * factor, b.y * factor)
            for b in self._blocks
        ]
        return Floorplan(
            blocks,
            die_width=self.die_width * factor,
            die_height=self.die_height * factor,
            name=self.name,
        )
