"""AMD Athlon 64-like floorplan.

Used for the paper's Fig. 4 (steady-state map under OIL-SILICON,
qualitative validation against the IR measurements of Mesa-Martinez et
al., ISCA'07) and Fig. 5 (secondary-path ablation).  The paper derives
its floorplan from the processor die photo; the die photo itself is not
available here, so this module lays out the paper's 21 block names
(listed on the Fig. 5 axis) in a topology consistent with the published
description:

* a large, relatively cool ``l2cache`` occupying the bottom of the die,
* the core cluster (``sched`` -- the hottest unit in the paper's
  snapshot -- with ``rob_irf``, ``lsq``, ``fetch``, ...) in a band near
  the top,
* ``blank`` filler units along the top edge (the paper excludes "the
  blank area on the edges" when quoting the coolest temperature).

Per-block reference powers were calibrated against the OIL-SILICON
thermal model (10 m/s flow, secondary path, 40 C oil) so the steady
state lands where the paper's validation does: hottest block ``sched``
at about 72 C (paper: ~73 C model vs ~70 C IR) and the coolest active
block near 45-49 C (paper: ~45 C).  The total of ~7 W reflects the
reduced-activity operating point of the published IR experiment, not
the processor's TDP.
"""

from __future__ import annotations

from typing import Dict, List

from ..units import mm
from .block import Block, Floorplan

#: The 21 block names in the order of the paper's Fig. 5 axis.
ATHLON_BLOCK_NAMES = [
    "blank1",
    "blank2",
    "blank3",
    "blank4",
    "mem_ctl",
    "clock",
    "l2cache",
    "fetch",
    "rob_irf",
    "sched",
    "clockd1",
    "clockd2",
    "clockd3",
    "lsq",
    "dtlb",
    "fp_sched",
    "frf",
    "sse",
    "l1i",
    "bus_etc",
    "l1d",
    "fp0",
]

_DIE_W_MM = 11.0
_DIE_H_MM = 10.0

# Geometry in millimeters: (width, height, x, y); exact gapless tiling
# in five horizontal bands.
_GEOMETRY_MM = {
    # Band 1: L2 cache across the bottom.
    "l2cache": (11.0, 4.0, 0.0, 0.0),
    # Band 2: memory controller and buses.
    "mem_ctl": (5.5, 1.0, 0.0, 4.0),
    "bus_etc": (5.5, 1.0, 5.5, 4.0),
    # Band 3: first-level caches and SIMD/FP datapaths.
    "l1i": (3.0, 2.5, 0.0, 5.0),
    "l1d": (3.5, 2.5, 3.0, 5.0),
    "sse": (2.5, 2.5, 6.5, 5.0),
    "fp0": (2.0, 2.5, 9.0, 5.0),
    # Band 4: the out-of-order core.
    "fetch": (2.0, 1.5, 0.0, 7.5),
    "sched": (1.2, 1.5, 2.0, 7.5),
    "rob_irf": (1.8, 1.5, 3.2, 7.5),
    "lsq": (1.6, 1.5, 5.0, 7.5),
    "dtlb": (1.2, 1.5, 6.6, 7.5),
    "fp_sched": (1.4, 1.5, 7.8, 7.5),
    "frf": (1.8, 1.5, 9.2, 7.5),
    # Band 5: clock distribution and blank filler along the top edge.
    "blank1": (2.0, 1.0, 0.0, 9.0),
    "clock": (1.5, 1.0, 2.0, 9.0),
    "clockd1": (1.0, 1.0, 3.5, 9.0),
    "clockd2": (1.0, 1.0, 4.5, 9.0),
    "clockd3": (1.0, 1.0, 5.5, 9.0),
    "blank2": (1.5, 1.0, 6.5, 9.0),
    "blank3": (1.5, 1.0, 8.0, 9.0),
    "blank4": (1.5, 1.0, 9.5, 9.0),
}

#: Reference average power per block, Watts.  Chosen (see module
#: docstring) so the OIL-SILICON steady state reproduces the paper's
#: validation numbers; the qualitative structure (hot scheduler/core,
#: cool L2 and blanks) follows the Mesa-Martinez measurements the paper
#: compares against.
_REFERENCE_POWER_W = {
    "blank1": 0.008,
    "blank2": 0.008,
    "blank3": 0.008,
    "blank4": 0.008,
    "mem_ctl": 0.04,
    "clock": 0.04,
    "l2cache": 0.10,
    "fetch": 0.06,
    "rob_irf": 0.30,
    "sched": 3.05,
    "clockd1": 0.012,
    "clockd2": 0.012,
    "clockd3": 0.012,
    "lsq": 0.22,
    "dtlb": 0.04,
    "fp_sched": 0.04,
    "frf": 0.04,
    "sse": 0.24,
    "l1i": 0.12,
    "bus_etc": 0.04,
    "l1d": 0.30,
    "fp0": 0.12,
}


def athlon_floorplan() -> Floorplan:
    """Build the Athlon-like floorplan (11 mm x 10 mm, 21 blocks)."""
    blocks: List[Block] = []
    for name in ATHLON_BLOCK_NAMES:
        width, height, x, y = _GEOMETRY_MM[name]
        blocks.append(Block(name, mm(width), mm(height), mm(x), mm(y)))
    plan = Floorplan(
        blocks, die_width=mm(_DIE_W_MM), die_height=mm(_DIE_H_MM), name="athlon"
    )
    plan.check_non_overlapping()
    return plan


def athlon_reference_power() -> Dict[str, float]:
    """Per-block average power (Watts) for the Fig. 4 validation run."""
    return dict(_REFERENCE_POWER_W)
