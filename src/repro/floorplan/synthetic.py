"""Generated floorplans for controlled experiments.

The paper's characterization experiments (Figs. 2, 3, 6, 8) use simple
synthetic dies: a uniform die, or a die with one small hot block.  The
reverse-power-engineering analysis (Section 5.4) discusses a multi-core
chip with identical cores.  These generators produce exact, gapless
tilings for all of those cases.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import GeometryError
from ..units import require_positive
from .block import Block, Floorplan


def uniform_grid_floorplan(
    die_width: float,
    die_height: float,
    nx: int = 1,
    ny: int = 1,
    prefix: str = "cell",
) -> Floorplan:
    """A die tiled by an nx-by-ny grid of identical rectangular blocks.

    With ``nx == ny == 1`` this is the single-block uniform die used in
    the Fig. 2 validation (20 mm x 20 mm, uniformly powered).
    """
    require_positive("die_width", die_width)
    require_positive("die_height", die_height)
    if nx < 1 or ny < 1:
        raise GeometryError("grid dimensions must be >= 1")
    cell_w = die_width / nx
    cell_h = die_height / ny
    blocks: List[Block] = []
    for j in range(ny):
        for i in range(nx):
            name = prefix if nx * ny == 1 else f"{prefix}_{i}_{j}"
            blocks.append(Block(name, cell_w, cell_h, i * cell_w, j * cell_h))
    return Floorplan(
        blocks, die_width=die_width, die_height=die_height, name="uniform_grid"
    )


def single_hot_block_floorplan(
    die_width: float,
    die_height: float,
    hot_width: float,
    hot_height: float,
    hot_x: Optional[float] = None,
    hot_y: Optional[float] = None,
    hot_name: str = "hot",
    cold_prefix: str = "cold",
) -> Floorplan:
    """A die with one rectangular hot block and the rest tiled around it.

    The surrounding area is tiled with (up to) eight rectangles: four
    edge strips and four corners, so block-level aggregation still sees a
    sensible "coolest unit" (paper Fig. 6 plots the coolest block).  By
    default the hot block is centered, matching the Fig. 3 validation
    (2 mm x 2 mm source at the center of a 20 mm die).
    """
    require_positive("die_width", die_width)
    require_positive("die_height", die_height)
    require_positive("hot_width", hot_width)
    require_positive("hot_height", hot_height)
    if hot_width > die_width or hot_height > die_height:
        raise GeometryError("hot block does not fit on the die")
    if hot_x is None:
        hot_x = (die_width - hot_width) / 2.0
    if hot_y is None:
        hot_y = (die_height - hot_height) / 2.0
    if hot_x < 0 or hot_y < 0 or hot_x + hot_width > die_width + 1e-12 \
            or hot_y + hot_height > die_height + 1e-12:
        raise GeometryError("hot block placement is outside the die")

    blocks = [Block(hot_name, hot_width, hot_height, hot_x, hot_y)]
    x0, x1 = hot_x, hot_x + hot_width
    y0, y1 = hot_y, hot_y + hot_height

    def add(name: str, x_lo: float, x_hi: float, y_lo: float, y_hi: float) -> None:
        if x_hi - x_lo > 1e-12 and y_hi - y_lo > 1e-12:
            blocks.append(
                Block(name, x_hi - x_lo, y_hi - y_lo, x_lo, y_lo)
            )

    # Strips left/right of the hot block at its own vertical span, full
    # width strips below and above.
    add(f"{cold_prefix}_left", 0.0, x0, y0, y1)
    add(f"{cold_prefix}_right", x1, die_width, y0, y1)
    add(f"{cold_prefix}_bottom", 0.0, die_width, 0.0, y0)
    add(f"{cold_prefix}_top", 0.0, die_width, y1, die_height)

    plan = Floorplan(
        blocks, die_width=die_width, die_height=die_height,
        name="single_hot_block",
    )
    plan.check_non_overlapping()
    return plan


def multicore_floorplan(
    cores_x: int,
    cores_y: int,
    core_width: float,
    core_height: float,
    core_prefix: str = "core",
) -> Floorplan:
    """A many-core die: a cores_x-by-cores_y array of identical cores.

    Used by the Section 5.4 reverse-power-engineering experiment: with
    every core dissipating the same power and oil flowing left-to-right,
    downstream cores read hotter under the IR camera and their
    reverse-engineered power is inflated.
    """
    if cores_x < 1 or cores_y < 1:
        raise GeometryError("core counts must be >= 1")
    plan = uniform_grid_floorplan(
        cores_x * core_width, cores_y * core_height,
        nx=cores_x, ny=cores_y, prefix=core_prefix,
    )
    return Floorplan(
        plan.blocks, die_width=plan.die_width, die_height=plan.die_height,
        name="multicore",
    )


def checkerboard_floorplan(
    die_width: float,
    die_height: float,
    n: int = 4,
) -> Floorplan:
    """An n-by-n checkerboard of alternating ``hot``/``cool`` blocks.

    A stress pattern for gradient and sensor-placement studies: it
    maximizes the number of distinct local hot spots.
    """
    plan = uniform_grid_floorplan(die_width, die_height, nx=n, ny=n, prefix="b")
    blocks = []
    for j in range(n):
        for i in range(n):
            flavor = "hot" if (i + j) % 2 == 0 else "cool"
            old = plan[f"b_{i}_{j}"]
            blocks.append(
                Block(f"{flavor}_{i}_{j}", old.width, old.height, old.x, old.y)
            )
    return Floorplan(
        blocks, die_width=die_width, die_height=die_height, name="checkerboard"
    )
