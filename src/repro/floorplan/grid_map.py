"""Mapping between floorplan blocks and a regular thermal grid.

The grid model discretizes the die into ``nx x ny`` rectangular cells.
A block generally covers many cells and a border cell may be shared by
several blocks, so the mapping is stored as a sparse matrix of overlap
areas:

* to distribute per-block power onto cells, each block's power is spread
  uniformly over its area (``P_cell = sum_b P_b * A_overlap / A_b``);
* to report per-block temperatures, each block averages the cells it
  covers, weighted by overlap area (what a uniform sensor integrated
  over the unit would read).

Cell (i, j) covers ``[i*dx, (i+1)*dx) x [j*dy, (j+1)*dy)``; the flat
cell index is ``j * nx + i`` (row-major in y).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import sparse

from ..errors import GeometryError
from .block import Floorplan


def _axis_overlaps(
    lo: float, hi: float, cell_size: float, n_cells: int
) -> Tuple[int, int, np.ndarray]:
    """Overlap lengths of interval [lo, hi) with each grid cell on an axis.

    Returns (first_cell, last_cell_exclusive, lengths) where ``lengths``
    has one entry per covered cell.
    """
    first = max(0, int(np.floor(lo / cell_size + 1e-12)))
    last = min(n_cells, int(np.ceil(hi / cell_size - 1e-12)))
    if last <= first:
        return first, first, np.zeros(0)
    edges_lo = np.maximum(np.arange(first, last) * cell_size, lo)
    edges_hi = np.minimum((np.arange(first, last) + 1) * cell_size, hi)
    return first, last, np.maximum(edges_hi - edges_lo, 0.0)


class GridMapping:
    """Precomputed block <-> cell overlap structure for one floorplan/grid."""

    def __init__(self, floorplan: Floorplan, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise GeometryError("grid must have at least one cell per axis")
        self.floorplan = floorplan
        self.nx = int(nx)
        self.ny = int(ny)
        self.dx = floorplan.die_width / self.nx
        self.dy = floorplan.die_height / self.ny
        self.cell_area = self.dx * self.dy
        self.n_cells = self.nx * self.ny
        self.n_blocks = len(floorplan)
        self._overlap = self._build_overlap()
        covered = np.asarray(self._overlap.sum(axis=0)).ravel()
        #: Fraction of each cell covered by any block (1.0 for a gapless
        #: tiling; < 1 over floorplan gaps).
        self.cell_coverage = covered / self.cell_area

    def _build_overlap(self) -> sparse.csr_matrix:
        rows, cols, vals = [], [], []
        for b_idx, block in enumerate(self.floorplan):
            i0, i1, wx = _axis_overlaps(block.x, block.x2, self.dx, self.nx)
            j0, j1, wy = _axis_overlaps(block.y, block.y2, self.dy, self.ny)
            if wx.size == 0 or wy.size == 0:
                raise GeometryError(
                    f"block {block.name!r} does not overlap the grid; "
                    f"is it outside the die?"
                )
            areas = np.outer(wy, wx)  # (ny_cov, nx_cov)
            jj, ii = np.nonzero(areas > 0.0)
            rows.extend([b_idx] * len(ii))
            cols.extend(((jj + j0) * self.nx + (ii + i0)).tolist())
            vals.extend(areas[jj, ii].tolist())
        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(self.n_blocks, self.n_cells)
        )
        return matrix

    # --- power distribution ---------------------------------------------

    def block_power_to_cells(self, block_power: np.ndarray) -> np.ndarray:
        """Spread per-block power (W) uniformly onto grid cells (W/cell)."""
        block_power = np.asarray(block_power, dtype=float)
        if block_power.shape != (self.n_blocks,):
            raise ValueError(
                f"expected {self.n_blocks} block powers, got {block_power.shape}"
            )
        per_area = block_power / self.floorplan.areas()
        return self._overlap.T @ per_area

    def cell_power_density(self, block_power: np.ndarray) -> np.ndarray:
        """Power density per cell in W/m^2 (cells as a flat vector)."""
        return self.block_power_to_cells(block_power) / self.cell_area

    # --- temperature aggregation ------------------------------------------

    def cell_to_block_average(self, cell_values: np.ndarray) -> np.ndarray:
        """Area-weighted average of a cell field over each block."""
        cell_values = np.asarray(cell_values, dtype=float)
        if cell_values.shape[-1] != self.n_cells:
            raise ValueError(
                f"expected {self.n_cells} cell values, got {cell_values.shape}"
            )
        areas = self.floorplan.areas()
        if cell_values.ndim == 1:
            return (self._overlap @ cell_values) / areas
        # (..., n_cells) -> (..., n_blocks) for e.g. time series of maps.
        summed = (self._overlap @ cell_values.T).T
        return summed / areas

    def block_weight_vector(self, block_index: int) -> np.ndarray:
        """Per-cell weights whose dot with a cell field gives one
        block's area-weighted average (a row of the averaging operator)."""
        if not 0 <= block_index < self.n_blocks:
            raise GeometryError(f"no block with index {block_index}")
        row = self._overlap.getrow(block_index)
        weights = np.zeros(self.n_cells)
        weights[row.indices] = row.data / self.floorplan.areas()[block_index]
        return weights

    def cell_to_block_max(self, cell_values: np.ndarray) -> np.ndarray:
        """Maximum of a cell field over the cells each block touches."""
        cell_values = np.asarray(cell_values, dtype=float)
        result = np.empty(self.n_blocks)
        indptr, indices = self._overlap.indptr, self._overlap.indices
        for b in range(self.n_blocks):
            cells = indices[indptr[b]:indptr[b + 1]]
            result[b] = cell_values[cells].max()
        return result

    # --- geometry helpers --------------------------------------------------

    def cell_centers(self) -> Tuple[np.ndarray, np.ndarray]:
        """(x, y) coordinates of cell centers as flat vectors."""
        xs = (np.arange(self.nx) + 0.5) * self.dx
        ys = (np.arange(self.ny) + 0.5) * self.dy
        gx, gy = np.meshgrid(xs, ys)
        return gx.ravel(), gy.ravel()

    def cell_index(self, x: float, y: float) -> int:
        """Flat index of the cell containing the point (x, y)."""
        if not (0 <= x < self.floorplan.die_width
                and 0 <= y < self.floorplan.die_height):
            raise GeometryError(f"point ({x}, {y}) is outside the die")
        i = min(int(x / self.dx), self.nx - 1)
        j = min(int(y / self.dy), self.ny - 1)
        return j * self.nx + i

    def as_grid(self, cell_values: np.ndarray) -> np.ndarray:
        """Reshape a flat cell vector to (ny, nx) with row 0 at y = 0."""
        cell_values = np.asarray(cell_values, dtype=float)
        return cell_values.reshape(self.ny, self.nx)
