"""Read and write HotSpot ``.flp`` floorplan files.

The HotSpot format is line oriented::

    <unit-name> <width> <height> <left-x> <bottom-y>

with ``#`` comments and blank lines ignored.  Lengths are meters.  This
is the format HotSpot itself consumes, so floorplans exported from this
library can be fed back to the original C tool and vice versa.
"""

from __future__ import annotations

import os
from typing import List, Optional, Union

from ..errors import FloorplanParseError
from .block import Block, Floorplan


def parse_flp(
    text: str,
    die_width: Optional[float] = None,
    die_height: Optional[float] = None,
    name: str = "floorplan",
) -> Floorplan:
    """Parse the contents of a HotSpot ``.flp`` file into a Floorplan."""
    blocks: List[Block] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) < 5:
            raise FloorplanParseError(
                f"line {line_no}: expected 5 fields "
                f"(name width height x y), got {len(fields)}: {raw!r}"
            )
        unit = fields[0]
        try:
            width, height, x, y = (float(f) for f in fields[1:5])
        except ValueError as exc:
            raise FloorplanParseError(
                f"line {line_no}: non-numeric geometry in {raw!r}"
            ) from exc
        try:
            blocks.append(Block(unit, width, height, x, y))
        except Exception as exc:
            raise FloorplanParseError(f"line {line_no}: {exc}") from exc
    if not blocks:
        raise FloorplanParseError("no blocks found in floorplan text")
    return Floorplan(blocks, die_width=die_width, die_height=die_height, name=name)


def format_flp(floorplan: Floorplan, header: bool = True) -> str:
    """Serialize a Floorplan to HotSpot ``.flp`` text."""
    lines: List[str] = []
    if header:
        lines.append(f"# floorplan: {floorplan.name}")
        lines.append(
            f"# die: {floorplan.die_width:.6g} x {floorplan.die_height:.6g} m"
        )
        lines.append("# unit-name\twidth\theight\tleft-x\tbottom-y")
    for block in floorplan:
        lines.append(
            f"{block.name}\t{block.width:.6e}\t{block.height:.6e}"
            f"\t{block.x:.6e}\t{block.y:.6e}"
        )
    return "\n".join(lines) + "\n"


def load_flp(
    path: Union[str, os.PathLike],
    die_width: Optional[float] = None,
    die_height: Optional[float] = None,
) -> Floorplan:
    """Load a floorplan from a ``.flp`` file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stem = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return parse_flp(text, die_width=die_width, die_height=die_height, name=stem)


def save_flp(floorplan: Floorplan, path: Union[str, os.PathLike]) -> None:
    """Write a floorplan to a ``.flp`` file on disk."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_flp(floorplan))
