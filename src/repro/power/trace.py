"""The PowerTrace container.

A power trace is a uniformly sampled sequence of per-block power
vectors -- the same structure HotSpot consumes as a ``.ptrace`` file
(one column per block, one row per sampling interval).  The paper's
Fig. 12 traces sample every 10 kcycles, about 3.3 us at its simulated
clock.
"""

from __future__ import annotations

from typing import IO, List, Sequence

import numpy as np

from ..errors import PowerTraceError
from ..floorplan.block import Floorplan
from ..rcmodel.grid import ThermalGridModel
from ..solver.events import PiecewiseConstantSchedule


class PowerTrace:
    """Uniformly sampled per-block power over time.

    Parameters
    ----------
    block_names:
        Column labels, in floorplan order.
    samples:
        Array of shape (n_samples, n_blocks), Watts; each row applies
        for one sampling interval.
    dt:
        Sampling interval in seconds.
    """

    def __init__(
        self, block_names: Sequence[str], samples: np.ndarray, dt: float
    ) -> None:
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2:
            raise PowerTraceError("samples must be 2-D (time x blocks)")
        if samples.shape[1] != len(block_names):
            raise PowerTraceError(
                f"{samples.shape[1]} columns but {len(block_names)} names"
            )
        if samples.shape[0] < 1:
            raise PowerTraceError("trace needs at least one sample")
        if dt <= 0:
            raise PowerTraceError("dt must be positive")
        if np.any(samples < 0) or not np.all(np.isfinite(samples)):
            raise PowerTraceError("powers must be finite and non-negative")
        self.block_names = list(block_names)
        self.samples = samples
        self.dt = float(dt)

    # --- basic views -------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of sampling intervals."""
        return self.samples.shape[0]

    @property
    def n_blocks(self) -> int:
        """Number of blocks (columns)."""
        return self.samples.shape[1]

    @property
    def duration(self) -> float:
        """Total trace duration in seconds."""
        return self.n_samples * self.dt

    @property
    def times(self) -> np.ndarray:
        """Start time of each sampling interval."""
        return np.arange(self.n_samples) * self.dt

    def column(self, block: str) -> np.ndarray:
        """Power time series of one named block."""
        try:
            index = self.block_names.index(block)
        except ValueError:
            raise PowerTraceError(f"no block named {block!r}") from None
        return self.samples[:, index]

    def total_power(self) -> np.ndarray:
        """Chip-total power per sample."""
        return self.samples.sum(axis=1)

    def average(self) -> np.ndarray:
        """Time-averaged per-block power vector."""
        return self.samples.mean(axis=0)

    def window(self, start: int, stop: int) -> "PowerTrace":
        """A sub-trace over sample indices [start, stop)."""
        if not 0 <= start < stop <= self.n_samples:
            raise PowerTraceError(f"bad window [{start}, {stop})")
        return PowerTrace(self.block_names, self.samples[start:stop], self.dt)

    def repeated(self, cycles: int) -> "PowerTrace":
        """The trace tiled ``cycles`` times."""
        if cycles < 1:
            raise PowerTraceError("cycles must be >= 1")
        return PowerTrace(
            self.block_names, np.tile(self.samples, (cycles, 1)), self.dt
        )

    def resampled(self, factor: int) -> "PowerTrace":
        """Average groups of ``factor`` samples (coarser dt).

        Mimics what a lower-bandwidth measurement (e.g. an IR camera
        frame) would see of the power activity.
        """
        if factor < 1:
            raise PowerTraceError("factor must be >= 1")
        n = (self.n_samples // factor) * factor
        if n == 0:
            raise PowerTraceError("trace shorter than one resampled bin")
        binned = self.samples[:n].reshape(-1, factor, self.n_blocks).mean(axis=1)
        return PowerTrace(self.block_names, binned, self.dt * factor)

    # --- model integration ---------------------------------------------------

    def check_floorplan(self, floorplan: Floorplan) -> None:
        """Raise unless the trace columns match the floorplan blocks."""
        if self.block_names != floorplan.names:
            raise PowerTraceError(
                "trace columns do not match floorplan block order"
            )

    def to_schedule(self, model: ThermalGridModel) -> PiecewiseConstantSchedule:
        """Convert to a node-power schedule for the transient solver."""
        self.check_floorplan(model.floorplan)
        segments = [
            (self.dt, model.node_power(self.samples[i]))
            for i in range(self.n_samples)
        ]
        return PiecewiseConstantSchedule.from_segments(segments)

    # --- HotSpot ptrace compatibility ----------------------------------------

    def to_ptrace(self, stream: IO[str]) -> None:
        """Write in HotSpot ``.ptrace`` format (header + rows)."""
        stream.write("\t".join(self.block_names) + "\n")
        for row in self.samples:
            stream.write("\t".join(f"{v:.6g}" for v in row) + "\n")

    @classmethod
    def from_ptrace(cls, stream: IO[str], dt: float) -> "PowerTrace":
        """Read a HotSpot ``.ptrace`` file (header + rows)."""
        lines = [line.strip() for line in stream if line.strip()]
        if len(lines) < 2:
            raise PowerTraceError("ptrace needs a header and at least one row")
        names = lines[0].split()
        rows: List[List[float]] = []
        for line_no, line in enumerate(lines[1:], start=2):
            fields = line.split()
            if len(fields) != len(names):
                raise PowerTraceError(
                    f"ptrace line {line_no}: {len(fields)} fields, "
                    f"expected {len(names)}"
                )
            try:
                rows.append([float(f) for f in fields])
            except ValueError as exc:
                raise PowerTraceError(
                    f"ptrace line {line_no}: non-numeric value"
                ) from exc
        return cls(names, np.asarray(rows), dt)
