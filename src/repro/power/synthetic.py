"""Synthetic power workloads for the paper's controlled experiments.

These generators produce the exact power stimuli of the characterization
figures: a long step on one block (Fig. 6), a periodic on/off pulse
train (Fig. 8), a power hand-off between two blocks (Fig. 9), plus a
phase-structured random trace for stress tests.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import PowerTraceError
from ..floorplan.block import Floorplan
from .trace import PowerTrace


def constant_power(
    floorplan: Floorplan, powers: Dict[str, float], duration: float, dt: float
) -> PowerTrace:
    """A constant per-block power held for ``duration`` seconds."""
    vector = floorplan.power_vector(powers)
    n = max(1, int(round(duration / dt)))
    return PowerTrace(floorplan.names, np.tile(vector, (n, 1)), dt)


def step_power(
    floorplan: Floorplan,
    block: str,
    power_density: float,
    duration: float,
    dt: float,
) -> PowerTrace:
    """Power density (W/m^2) applied to one block, all others idle.

    The paper's Fig. 6 warm-up experiment: "we apply power for about 6
    seconds duration to one hot block ... the power density is
    2.0 W/mm^2" (2e6 W/m^2 in SI).
    """
    watts = power_density * floorplan[block].area
    return constant_power(floorplan, {block: watts}, duration, dt)


def pulse_train(
    floorplan: Floorplan,
    block: str,
    on_power: float,
    on_time: float,
    off_time: float,
    cycles: int,
    dt: float,
    base_power: Optional[Dict[str, float]] = None,
) -> PowerTrace:
    """A periodic on/off pulse on one block (paper Fig. 8).

    The paper applies power for 15 ms then turns it off for 85 ms,
    repeating periodically.  ``base_power`` optionally adds a constant
    background on other blocks.
    """
    if on_time <= 0 or off_time <= 0:
        raise PowerTraceError("on_time and off_time must be positive")
    if cycles < 1:
        raise PowerTraceError("cycles must be >= 1")
    base = floorplan.power_vector(base_power or {})
    index = floorplan.index_of(block)
    n_on = max(1, int(round(on_time / dt)))
    n_off = max(1, int(round(off_time / dt)))
    period = np.tile(base, (n_on + n_off, 1))
    period[:n_on, index] += on_power
    samples = np.tile(period, (cycles, 1))
    return PowerTrace(floorplan.names, samples, dt)


def power_handoff(
    floorplan: Floorplan,
    first_block: str,
    second_block: str,
    power: float,
    switch_time: float,
    total_time: float,
    dt: float,
) -> PowerTrace:
    """Power on one block, then switched entirely to another (Fig. 9).

    The paper applies 2 W to IntReg for 10 ms with FPMap idle, then
    turns IntReg off and FPMap on, and asks which block is hottest at
    14 ms under each package.
    """
    if not 0 < switch_time < total_time:
        raise PowerTraceError("need 0 < switch_time < total_time")
    n_total = max(2, int(round(total_time / dt)))
    n_first = max(1, min(n_total - 1, int(round(switch_time / dt))))
    samples = np.zeros((n_total, len(floorplan)))
    samples[:n_first, floorplan.index_of(first_block)] = power
    samples[n_first:, floorplan.index_of(second_block)] = power
    return PowerTrace(floorplan.names, samples, dt)


def random_phase_power(
    floorplan: Floorplan,
    mean_power: Dict[str, float],
    n_samples: int,
    dt: float,
    n_phases: int = 4,
    burstiness: float = 0.5,
    seed: int = 0,
) -> PowerTrace:
    """A phase-structured random trace around per-block means.

    Splits time into ``n_phases`` contiguous phases; each phase draws a
    per-block activity multiplier, and samples within a phase add
    white noise.  ``burstiness`` in [0, 1) scales both variations.
    Deterministic for a given seed.
    """
    if not 0 <= burstiness < 1:
        raise PowerTraceError("burstiness must lie in [0, 1)")
    if n_samples < 1 or n_phases < 1:
        raise PowerTraceError("n_samples and n_phases must be >= 1")
    rng = np.random.default_rng(seed)
    means = floorplan.power_vector(mean_power)
    boundaries = np.linspace(0, n_samples, n_phases + 1).astype(int)
    samples = np.empty((n_samples, len(floorplan)))
    for p in range(n_phases):
        lo, hi = boundaries[p], boundaries[p + 1]
        if hi <= lo:
            continue
        phase_scale = 1.0 + burstiness * rng.uniform(-1, 1, size=len(floorplan))
        noise = 1.0 + 0.5 * burstiness * rng.standard_normal(
            (hi - lo, len(floorplan))
        )
        samples[lo:hi] = np.clip(means * phase_scale * noise, 0.0, None)
    return PowerTrace(floorplan.names, samples, dt)
