"""Power traces and synthetic power workloads."""

from .trace import PowerTrace
from .synthetic import (
    constant_power,
    step_power,
    pulse_train,
    power_handoff,
    random_phase_power,
)

__all__ = [
    "PowerTrace",
    "constant_power",
    "step_power",
    "pulse_train",
    "power_handoff",
    "random_phase_power",
]
