"""Fig. 5 -- ablation of the secondary heat transfer path.

Paper claims:

* (a) Under OIL-SILICON, omitting the secondary path overpredicts
  temperatures significantly (over 10 C for the Athlon), because a
  large share of the heat leaves through the package pins when the
  primary path is just oil over bare silicon.
* (b) Under AIR-SINK, adding the secondary path changes block
  temperatures by less than 1% -- essentially all heat already leaves
  through the low-resistance heatsink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


from ..floorplan import athlon_reference_power
from ..solver import steady_block_temperatures
from ..units import ZERO_CELSIUS_IN_KELVIN
from .common import athlon_air_model, athlon_oil_model


@dataclass
class Fig05Result:
    """Per-block temperatures (C) for the four configurations."""

    oil_with_secondary: Dict[str, float]
    oil_without_secondary: Dict[str, float]
    air_with_secondary: Dict[str, float]
    air_without_secondary: Dict[str, float]
    ambient_c: float = 37.0

    @property
    def oil_max_error_c(self) -> float:
        """Largest per-block overprediction from dropping the secondary
        path under oil, in Celsius (paper: > 10 C)."""
        return max(
            self.oil_without_secondary[name] - self.oil_with_secondary[name]
            for name in self.oil_with_secondary
        )

    @property
    def air_max_relative_change(self) -> float:
        """Largest relative change in temperature *rise* from adding the
        secondary path under AIR-SINK (paper: < 1%)."""
        worst = 0.0
        for name in self.air_with_secondary:
            rise_without = self.air_without_secondary[name] - self.ambient_c
            rise_with = self.air_with_secondary[name] - self.ambient_c
            if rise_without > 1e-9:
                worst = max(
                    worst, abs(rise_without - rise_with) / rise_without
                )
        return worst


def run_fig05(nx: int = 32, ny: int = 32) -> Fig05Result:
    """Run the Fig. 5 secondary-path ablation on the Athlon."""
    powers = athlon_reference_power()

    def temps(model) -> Dict[str, float]:
        kelvin = steady_block_temperatures(model, powers)
        return {k: v - ZERO_CELSIUS_IN_KELVIN for k, v in kelvin.items()}

    return Fig05Result(
        oil_with_secondary=temps(
            athlon_oil_model(nx=nx, ny=ny, include_secondary=True)
        ),
        oil_without_secondary=temps(
            athlon_oil_model(nx=nx, ny=ny, include_secondary=False)
        ),
        air_with_secondary=temps(
            athlon_air_model(nx=nx, ny=ny, include_secondary=True)
        ),
        air_without_secondary=temps(
            athlon_air_model(nx=nx, ny=ny, include_secondary=False)
        ),
    )
