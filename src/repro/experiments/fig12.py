"""Fig. 12 -- simulated EV6 temperature traces running gcc.

Paper setup: SimpleScalar+Wattch power samples every 10 kcycles
(~3.3 us) drive the thermal model; both packages use
Rconv = 0.3 K/W and 45 C ambient; the five hottest blocks are plotted.
Claims:

* AIR-SINK's heat-up/cool-down phases last ~3 ms; OIL-SILICON's far
  exceed the trace's swings (it spends most of its time in transient);
* OIL-SILICON's absolute temperatures are much higher (same total
  power, no copper spreading, high local densities) while cross-die
  *average* temperatures stay close (the cool L2 balances the core);
* the AIR-SINK hot spot (IntReg) is more distinct than OIL-SILICON's,
  where neighbors blend together;
* in both, IntReg can rise ~5 C in ~3 ms, so 0.1 C sensing resolution
  needs sampling every ~60 us (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import numpy as np

from ..analysis.time_constants import required_sampling_interval
from ..campaign import CampaignSpec, JobSpec, ModelSpec, ResultCache, run_campaign
from ..units import ZERO_CELSIUS_IN_KELVIN


@dataclass
class Fig12Result:
    """Per-block temperature traces (C) for both packages."""

    times: np.ndarray
    oil_blocks_c: np.ndarray   # (n_times, n_blocks)
    air_blocks_c: np.ndarray
    block_names: List[str]
    hottest_five_air: List[str]
    hottest_five_oil: List[str]

    def block_series(self, which: str, block: str) -> np.ndarray:
        """One block's trace from one package ("oil" or "air")."""
        data = self.oil_blocks_c if which == "oil" else self.air_blocks_c
        return data[:, self.block_names.index(block)]

    def average_trace(self, which: str, areas: np.ndarray) -> np.ndarray:
        """Area-weighted cross-die average temperature trace."""
        data = self.oil_blocks_c if which == "oil" else self.air_blocks_c
        weights = areas / areas.sum()
        return data @ weights

    def sampling_interval_for(
        self, which: str, block: str, resolution: float = 0.1
    ) -> float:
        """Sensor sampling interval bounding per-sample change (s)."""
        series = self.block_series(which, block)
        return required_sampling_interval(self.times, series, resolution)

    def hotspot_distinctness(self, which: str) -> float:
        """Mean gap (C) between the hottest and second-hottest block.

        Larger = a more distinct hot spot (the AIR-SINK signature)."""
        data = self.oil_blocks_c if which == "oil" else self.air_blocks_c
        ordered = np.sort(data, axis=1)
        return float(np.mean(ordered[:, -1] - ordered[:, -2]))


def fig12_campaign(
    instructions: int = 500_000,
    duration: float = 0.040,
    rconv: float = 0.3,
    nx: int = 24,
    ny: int = 24,
    thermal_stride: int = 10,
) -> CampaignSpec:
    """The Fig. 12 experiment as a campaign: one transient per package."""
    trace_params = dict(
        duration=duration, instructions=instructions,
        thermal_stride=thermal_stride, init="steady",
    )
    oil = JobSpec.make(
        "trace_transient", tag="oil",
        model=ModelSpec(
            chip="ev6", package="oil", nx=nx, ny=ny,
            uniform_h=True, target_resistance=rconv,
            include_secondary=True, ambient_c=45.0,
        ),
        **trace_params,
    )
    air = JobSpec.make(
        "trace_transient", tag="air",
        model=ModelSpec(
            chip="ev6", package="air", nx=nx, ny=ny,
            convection_resistance=rconv, include_secondary=False,
            ambient_c=45.0,
        ),
        **trace_params,
    )
    return CampaignSpec(name="fig12", jobs=(oil, air))


def fig12_ensemble_campaign(
    seeds: Sequence[int],
    package: str = "oil",
    instructions: int = 500_000,
    duration: float = 0.040,
    rconv: float = 0.3,
    nx: int = 24,
    ny: int = 24,
    thermal_stride: int = 10,
) -> CampaignSpec:
    """A seed ensemble of Fig. 12-style trace runs on one package.

    All jobs share one :class:`~repro.campaign.ModelSpec` and one
    thermal step, so the executor's batch path integrates the whole
    ensemble as a single lockstep solve — the demonstration case for
    :mod:`repro.campaign.batching` (the two-package ``fig12`` campaign
    itself cannot batch: its jobs use different models).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if package == "oil":
        model = ModelSpec(
            chip="ev6", package="oil", nx=nx, ny=ny,
            uniform_h=True, target_resistance=rconv,
            include_secondary=True, ambient_c=45.0,
        )
    else:
        model = ModelSpec(
            chip="ev6", package="air", nx=nx, ny=ny,
            convection_resistance=rconv, include_secondary=False,
            ambient_c=45.0,
        )
    jobs = tuple(
        JobSpec.make(
            "trace_transient", tag=f"seed{seed}", model=model,
            duration=duration, instructions=instructions, seed=seed,
            thermal_stride=thermal_stride, init="steady",
        )
        for seed in seeds
    )
    return CampaignSpec(name=f"fig12-ensemble-{package}", jobs=jobs)


@dataclass
class Fig12Ensemble:
    """Per-seed block traces (C) plus across-seed spread statistics."""

    times: np.ndarray
    seed_blocks_c: np.ndarray  # (n_seeds, n_times, n_blocks)
    seeds: List[int]
    block_names: List[str]

    def spread(self, block: str) -> np.ndarray:
        """Across-seed max-min temperature spread of one block (C)."""
        series = self.seed_blocks_c[:, :, self.block_names.index(block)]
        return np.asarray(series.max(axis=0) - series.min(axis=0))


def run_fig12_ensemble(
    seeds: Sequence[int],
    package: str = "oil",
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    batch: bool = True,
    **campaign_params: Any,
) -> Fig12Ensemble:
    """Run a same-package seed ensemble (batched by default)."""
    spec = fig12_ensemble_campaign(list(seeds), package=package,
                                   **campaign_params)
    run = run_campaign(spec, jobs=jobs, cache=cache, batch=batch)
    first = run.result_for(spec.jobs[0].tag)
    ambient_c = first.meta["ambient_k"] - ZERO_CELSIUS_IN_KELVIN
    stacked = np.stack([
        run.result_for(job.tag).arrays["block_rise_k"] + ambient_c
        for job in spec.jobs
    ])
    return Fig12Ensemble(
        times=first.arrays["times"],
        seed_blocks_c=stacked,
        seeds=list(seeds),
        block_names=list(first.meta["block_names"]),
    )


def run_fig12(
    instructions: int = 500_000,
    duration: float = 0.040,
    rconv: float = 0.3,
    nx: int = 24,
    ny: int = 24,
    thermal_stride: int = 10,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    batch: bool = True,
) -> Fig12Result:
    """Run the Fig. 12 trace-driven experiment via the campaign engine.

    The power trace comes from the functional simulation extended to
    ``duration`` seconds by the phase-level synthesizer (the paper's
    trace spans ~130 ms; the default 40 ms keeps the run quick while
    covering many program phases).  ``thermal_stride`` bins the 3.3 us
    power samples into coarser thermal steps -- 33 us by default, far
    below the millisecond thermal dynamics of interest and below the
    ~60 us sensor-sampling bound the experiment derives.  Both package
    jobs synthesize the same deterministic trace (shared through the
    machine-wide trace cache when enabled).
    """
    run = run_campaign(
        fig12_campaign(
            instructions=instructions, duration=duration, rconv=rconv,
            nx=nx, ny=ny, thermal_stride=thermal_stride,
        ),
        jobs=jobs, cache=cache, batch=batch,
    )
    oil_result = run.result_for("oil")
    air_result = run.result_for("air")
    plan_names = list(oil_result.meta["block_names"])
    ambient_c = oil_result.meta["ambient_k"] - ZERO_CELSIUS_IN_KELVIN
    times = oil_result.arrays["times"]
    oil_c = oil_result.arrays["block_rise_k"] + ambient_c
    air_c = air_result.arrays["block_rise_k"] + ambient_c

    def hottest_five(data: np.ndarray) -> List[str]:
        order = np.argsort(data.mean(axis=0))[::-1][:5]
        return [plan_names[i] for i in order]

    return Fig12Result(
        times=times,
        oil_blocks_c=oil_c,
        air_blocks_c=air_c,
        block_names=plan_names,
        hottest_five_air=hottest_five(air_c),
        hottest_five_oil=hottest_five(oil_c),
    )
