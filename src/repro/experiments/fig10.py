"""Fig. 10 -- steady-state EV6 thermal maps for gcc, both packages.

Paper setup: the EV6 running gcc (average per-block powers from the
architecture/power simulation), solved to steady state under
OIL-SILICON and AIR-SINK.  Claims: the oil map has roughly 30 C higher
maximum temperature and roughly 55 C larger across-die temperature
difference -- copper's lateral spreading flattens the AIR-SINK map.

Both packages use the same overall convection resistance (1.0 K/W, the
paper's fairness convention from Fig. 6); the oil side keeps its local
h(x) profile shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..analysis.thermal_maps import MapStatistics
from ..solver import steady_state
from ..units import ZERO_CELSIUS_IN_KELVIN
from .common import celsius, ev6_air_model, ev6_oil_model, gcc_average_power


@dataclass
class Fig10Result:
    """Cell maps (C) and their statistics for both packages."""

    oil_map_c: np.ndarray
    air_map_c: np.ndarray
    oil_stats: MapStatistics
    air_stats: MapStatistics
    oil_blocks_c: Dict[str, float]
    air_blocks_c: Dict[str, float]

    @property
    def tmax_difference(self) -> float:
        """Oil Tmax minus air Tmax, Celsius (paper: ~30)."""
        return self.oil_stats.t_max - self.air_stats.t_max

    @property
    def gradient_difference(self) -> float:
        """Oil across-die dT minus air dT, Celsius (paper: ~55)."""
        return self.oil_stats.dt - self.air_stats.dt


def run_fig10(
    nx: int = 32,
    ny: int = 32,
    rconv: float = 1.0,
    instructions: int = 500_000,
) -> Fig10Result:
    """Run the Fig. 10 steady-map comparison."""
    ambient = celsius(45.0)
    powers = gcc_average_power(instructions)
    oil = ev6_oil_model(
        nx=nx, ny=ny, target_resistance=rconv, include_secondary=True,
        ambient=ambient,
    )
    air = ev6_air_model(
        nx=nx, ny=ny, convection_resistance=rconv, ambient=ambient
    )

    def solve(model):
        rise = steady_state(model.network, model.node_power(powers))
        cells = model.silicon_cell_rise(rise)
        map_c = (
            model.mapping.as_grid(cells)
            + model.config.ambient - ZERO_CELSIUS_IN_KELVIN
        )
        blocks = {
            name: temp - ZERO_CELSIUS_IN_KELVIN
            for name, temp in zip(
                model.floorplan.names, model.block_temperatures(rise)
            )
        }
        return map_c, MapStatistics.of(map_c), blocks

    oil_map, oil_stats, oil_blocks = solve(oil)
    air_map, air_stats, air_blocks = solve(air)
    return Fig10Result(
        oil_map_c=oil_map,
        air_map_c=air_map,
        oil_stats=oil_stats,
        air_stats=air_stats,
        oil_blocks_c=oil_blocks,
        air_blocks_c=air_blocks,
    )
