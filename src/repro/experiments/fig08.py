"""Fig. 8 -- short-term transients around the steady operating point.

Paper setup: the Fig. 6 floorplan with the hot block driven by a
periodic pulse -- 15 ms on, 85 ms off.  The steady state under the
*average* power of the pulse train is used as the initial condition,
then one period is simulated.  Claims:

* OIL-SILICON's heat-up and cool-down look near-linear (a slow
  exponential seen over a short window) while AIR-SINK's are clearly
  exponential and complete within a few ms;
* OIL-SILICON takes much longer to cool down, and its heat-up and
  cool-down are asymmetric (the operating point sits low on the
  exponential).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power.synthetic import pulse_train
from ..solver import simulate_schedule, steady_state
from .common import celsius, ev6_air_model, ev6_oil_model


@dataclass
class Fig08Result:
    """Hot-block temperature-rise traces over pulse periods (K above
    the trace's own minimum, so heat-up/cool-down shapes compare)."""

    times: np.ndarray
    oil_trace: np.ndarray
    air_trace: np.ndarray
    on_time: float
    off_time: float

    def _swing(self, trace: np.ndarray):
        return float(trace.max() - trace.min())

    @property
    def oil_swing(self) -> float:
        """Peak-to-trough swing of the OIL-SILICON trace, K."""
        return self._swing(self.oil_trace)

    @property
    def air_swing(self) -> float:
        """Peak-to-trough swing of the AIR-SINK trace, K."""
        return self._swing(self.air_trace)

    def recovery_fraction(
        self, trace: np.ndarray, after: float = 0.015
    ) -> float:
        """Fraction of the pulse swing recovered ``after`` seconds past
        the peak.

        AIR-SINK (tau ~ ms) recovers essentially fully within 15 ms;
        OIL-SILICON (tau ~ hundreds of ms) recovers only a small part --
        the paper's "it takes much longer for OIL-SILICON to cool
        down".  The swing is normalized by peak minus the trace's
        periodic minimum.
        """
        peak_index = int(np.argmax(trace))
        peak = float(trace[peak_index])
        floor = float(trace.min())
        swing = peak - floor
        if swing <= 0:
            return 1.0
        t_target = self.times[peak_index] + after
        index = int(np.argmin(np.abs(self.times - t_target)))
        return float((peak - trace[index]) / swing)

    def heatup_linearity(self, trace: np.ndarray) -> float:
        """R^2 of a straight-line fit to the heat-up segment.

        Near 1.0 = looks linear (the OIL-SILICON signature).
        """
        n_on = int(np.argmax(trace)) + 1
        t = self.times[:n_on]
        v = trace[:n_on]
        if n_on < 3:
            return 1.0
        coeffs = np.polyfit(t, v, 1)
        fit = np.polyval(coeffs, t)
        ss_res = float(np.sum((v - fit) ** 2))
        ss_tot = float(np.sum((v - v.mean()) ** 2))
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


def run_fig08(
    hot_block: str = "Dcache",
    power_density: float = 2.0e6,
    on_time: float = 0.015,
    off_time: float = 0.085,
    dt: float = 0.5e-3,
    nx: int = 24,
    ny: int = 24,
    periods: int = 1,
) -> Fig08Result:
    """Run the Fig. 8 pulse-train experiment."""
    ambient = celsius(40.0)
    oil = ev6_oil_model(
        nx=nx, ny=ny, uniform_h=True, target_resistance=1.0,
        include_secondary=False, ambient=ambient,
    )
    air = ev6_air_model(
        nx=nx, ny=ny, convection_resistance=1.0, ambient=ambient
    )
    plan = oil.floorplan
    on_power = power_density * plan[hot_block].area
    trace = pulse_train(
        plan, hot_block, on_power, on_time, off_time,
        cycles=periods, dt=dt,
    )
    hot_index = plan.index_of(hot_block)

    def run(model):
        schedule = trace.to_schedule(model)
        x0 = steady_state(
            model.network, model.node_power(trace.average())
        )
        result = simulate_schedule(
            model.network, schedule, dt=dt, x0=x0,
            projector=model.block_rise,
        )
        series = result.states[:, hot_index]
        return result.times, series - series.min()

    times, oil_series = run(oil)
    _, air_series = run(air)
    return Fig08Result(
        times=times,
        oil_trace=oil_series,
        air_trace=air_series,
        on_time=on_time,
        off_time=off_time,
    )
