"""Fig. 2 -- transient validation of the oil model against the reference.

Paper setup: a 20 mm x 20 mm x 0.5 mm silicon die in a 10 m/s oil flow,
200 W applied as a step at t = 0 uniformly across the die, temperature
probed at the chip center.  The paper compares modified HotSpot against
ANSYS and reports (a) similar time-to-steady-state in both, (b) an
equivalent convection resistance of about 1.0 K/W, and (c) a thermal
time constant on the order of a second.

Here the compact RC model plays HotSpot's role and the independent 3-D
finite-difference solver plays ANSYS's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..convection.flow import FlowSpec
from ..floorplan import uniform_grid_floorplan
from ..package import oil_silicon_package
from ..rcmodel import ThermalGridModel
from ..solver import steady_state, transient_step_response
from ..validation import ReferenceFDSolver
from .common import VALIDATION_DIE, VALIDATION_VELOCITY


@dataclass
class Fig02Result:
    """Transient traces from the two solvers plus agreement metrics."""

    times: np.ndarray
    rc_rise: np.ndarray          # compact model, center-block rise (K)
    fd_rise: np.ndarray          # reference solver, center-cell rise (K)
    rconv: float                 # equivalent convection resistance (K/W)
    rc_steady: float
    fd_steady: float

    @property
    def steady_agreement(self) -> float:
        """Relative difference of the two steady values."""
        return abs(self.rc_steady - self.fd_steady) / self.fd_steady

    @property
    def max_pointwise_error(self) -> float:
        """Worst-case |RC - FD| along the trace, relative to steady."""
        return float(
            np.max(np.abs(self.rc_rise - self.fd_rise)) / self.fd_steady
        )

    def time_constant_estimate(self) -> float:
        """63% rise time of the RC trace (the 'order of a second' check)."""
        target = 0.632 * self.rc_steady
        above = np.nonzero(self.rc_rise >= target)[0]
        return float(self.times[above[0]]) if above.size else float("inf")


def run_fig02(
    power: float = 200.0,
    t_end: float = 3.0,
    dt: float = 0.02,
    rc_grid: int = 20,
    fd_grid: int = 32,
    fd_layers: int = 4,
) -> Fig02Result:
    """Run the Fig. 2 validation experiment."""
    die = VALIDATION_DIE
    flow = FlowSpec(velocity=VALIDATION_VELOCITY, uniform=True)

    # Compact RC model (the "modified HotSpot").
    plan = uniform_grid_floorplan(die["width"], die["height"], prefix="die")
    config = oil_silicon_package(
        die["width"], die["height"], velocity=VALIDATION_VELOCITY,
        die_thickness=die["thickness"], uniform_h=True,
        include_secondary=False, ambient=300.0,
    )
    model = ThermalGridModel(plan, config, nx=rc_grid, ny=rc_grid)
    node_power = model.node_power({"die": power})
    center_cell = model.mapping.cell_index(die["width"] / 2, die["height"] / 2)

    def center_probe(state: np.ndarray) -> np.ndarray:
        return np.asarray([model.silicon_cell_rise(state)[center_cell]])

    rc_result = transient_step_response(
        model.network, node_power, t_end=t_end, dt=dt, projector=center_probe
    )
    rc_steady_state = steady_state(model.network, node_power)
    rc_steady = float(model.silicon_cell_rise(rc_steady_state)[center_cell])

    # Independent reference (the "ANSYS").
    fd = ReferenceFDSolver(
        die["width"], die["height"], die["thickness"], flow,
        nx=fd_grid, ny=fd_grid, nz=fd_layers,
    )
    fd_power = fd.uniform_power(power)
    probe = fd.probe_index(die["width"] / 2, die["height"] / 2, layer=0)
    fd_result = fd.transient_probe(fd_power, t_end=t_end, dt=dt, probe=probe)
    fd_steady = float(
        fd.steady_rise(fd_power)[probe]
    )

    rconv = flow.overall_resistance(die["width"], die["height"])
    # Interpolate both traces onto the RC time base (they share dt here,
    # but keep the interpolation so differing dts also work).
    fd_on_rc = np.interp(rc_result.times, fd_result.times, fd_result.values)
    return Fig02Result(
        times=rc_result.times,
        rc_rise=rc_result.states[:, 0],
        fd_rise=fd_on_rc,
        rconv=rconv,
        rc_steady=rc_steady,
        fd_steady=fd_steady,
    )
