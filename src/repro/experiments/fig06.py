"""Fig. 6 -- warm-up transients of OIL-SILICON vs AIR-SINK.

Paper setup: same EV6-style die in both packages, both with the same
overall convection resistance Rconv = 1.0 K/W.  Power is applied for
about 6 seconds to one hot block at 2.0 W/mm^2 with every other block
idle.  Claims:

* OIL-SILICON reaches steady state much faster (long-term time
  constant ~ Rconv * C_Si, versus Rconv * C_sink for the heatsink);
* OIL-SILICON's steady hot spot is far hotter (137 C vs 63 C in the
  paper) and its coolest block cooler (42 C vs 55 C) -- poor lateral
  spreading without copper;
* the cross-die *average* temperatures are close (62 C vs 56 C)
  because Rconv is the same;
* AIR-SINK shows an instant initial jump (the fast R_Si C_Si mode)
  followed by a slow sink-dominated climb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power.synthetic import step_power
from ..solver import steady_state, transient_simulate
from ..units import ZERO_CELSIUS_IN_KELVIN
from .common import celsius, ev6_air_model, ev6_oil_model


@dataclass
class Fig06Result:
    """Hot/coolest-block warm-up traces plus true steady values (C).

    The paper quotes *steady-state* temperatures (137 vs 63 C hot,
    42 vs 55 C cool, 62 vs 56 C average); AIR-SINK has not finished
    warming by the 6 s window's end (its sink time constant is tens of
    seconds -- exactly the paper's point), so the steady values come
    from separate steady solves, not the trace endpoints.
    """

    times: np.ndarray
    oil_hot: np.ndarray
    oil_cool: np.ndarray
    oil_average: np.ndarray
    air_hot: np.ndarray
    air_cool: np.ndarray
    air_average: np.ndarray
    hot_block: str
    cool_block_oil: str
    cool_block_air: str
    oil_hot_steady: float
    oil_cool_steady: float
    oil_average_steady: float
    air_hot_steady: float
    air_cool_steady: float
    air_average_steady: float

    def fraction_of_steady_at_end(self, which: str) -> float:
        """How much of the hot block's steady rise the 6 s trace
        reached: ~1 for OIL-SILICON, well below 1 for AIR-SINK."""
        if which == "oil":
            trace, steady = self.oil_hot, self.oil_hot_steady
        else:
            trace, steady = self.air_hot, self.air_hot_steady
        start = trace[0]
        return float((trace[-1] - start) / (steady - start))

    def air_initial_jump_fraction(self, jump_window: float = 0.1) -> float:
        """Fraction of the 6 s AIR-SINK excursion completed within the
        first ``jump_window`` seconds (the 'instant jump')."""
        index = int(np.argmin(np.abs(self.times - jump_window)))
        total = self.air_hot[-1] - self.air_hot[0]
        if total <= 0:
            return 0.0
        return float((self.air_hot[index] - self.air_hot[0]) / total)


def run_fig06(
    hot_block: str = "Dcache",
    power_density: float = 2.0e6,
    t_end: float = 6.0,
    dt: float = 0.01,
    nx: int = 24,
    ny: int = 24,
) -> Fig06Result:
    """Run the Fig. 6 warm-up experiment."""
    ambient = celsius(40.0)
    oil = ev6_oil_model(
        nx=nx, ny=ny, uniform_h=True, target_resistance=1.0,
        include_secondary=False, ambient=ambient,
    )
    air = ev6_air_model(
        nx=nx, ny=ny, convection_resistance=1.0, ambient=ambient
    )
    plan = oil.floorplan
    trace = step_power(plan, hot_block, power_density, duration=t_end, dt=dt)
    power_vector = trace.samples[0]

    def run(model):
        node_power = model.node_power(power_vector)
        return transient_simulate(
            model.network, node_power, t_end=t_end, dt=dt,
            projector=model.block_rise,
        )

    oil_result = run(oil)
    air_result = run(air)
    hot_index = plan.index_of(hot_block)
    ambient_c = ambient - ZERO_CELSIUS_IN_KELVIN

    def to_c(states: np.ndarray) -> np.ndarray:
        return states + ambient_c

    def steady_blocks(model) -> np.ndarray:
        rise = steady_state(model.network, model.node_power(power_vector))
        return model.block_rise(rise) + ambient_c

    oil_steady = steady_blocks(oil)
    air_steady = steady_blocks(air)
    # The "coolest unit" is judged at steady state, excluding the
    # heated block itself.
    mask = np.ones(len(plan), dtype=bool)
    mask[hot_index] = False
    indices = np.arange(len(plan))
    oil_cool_index = int(indices[mask][np.argmin(oil_steady[mask])])
    air_cool_index = int(indices[mask][np.argmin(air_steady[mask])])
    area_weights = plan.areas() / plan.areas().sum()
    return Fig06Result(
        times=oil_result.times,
        oil_hot=to_c(oil_result.states[:, hot_index]),
        oil_cool=to_c(oil_result.states[:, oil_cool_index]),
        oil_average=to_c(oil_result.states @ area_weights),
        air_hot=to_c(air_result.states[:, hot_index]),
        air_cool=to_c(air_result.states[:, air_cool_index]),
        air_average=to_c(air_result.states @ area_weights),
        hot_block=hot_block,
        cool_block_oil=plan.names[oil_cool_index],
        cool_block_air=plan.names[air_cool_index],
        oil_hot_steady=float(oil_steady[hot_index]),
        oil_cool_steady=float(oil_steady[oil_cool_index]),
        oil_average_steady=float(oil_steady @ area_weights),
        air_hot_steady=float(air_steady[hot_index]),
        air_cool_steady=float(air_steady[air_cool_index]),
        air_average_steady=float(air_steady @ area_weights),
    )
