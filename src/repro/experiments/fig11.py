"""Fig. 11 -- the paper's TABLE: EV6 steady temperatures under four oil
flow directions.

Paper setup: EV6 with the gcc power map, OIL-SILICON with the local
h(x) of Eqns 7-8, for the four axis-aligned flow directions.  Claims:

* temperatures of individual units shift by tens of degrees with
  direction (upstream units are cooled best);
* with flow from top to bottom, IntReg (which sits at the top die
  edge, i.e. at the leading edge) is cooled so well that **Dcache**
  becomes the hottest unit -- for every other direction, IntReg stays
  hottest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..analysis.thermal_maps import hottest_block
from ..campaign import (
    CampaignRun,
    CampaignSpec,
    JobSpec,
    ModelSpec,
    ResultCache,
    TriagedCampaignRun,
    TriageSettings,
    run_campaign,
    run_campaign_triaged,
)
from ..convection.flow import ALL_DIRECTIONS, FlowDirection
from ..units import ZERO_CELSIUS_IN_KELVIN

#: Human-readable labels matching the paper's column headers.
DIRECTION_LABELS = {
    FlowDirection.LEFT_TO_RIGHT: "left to right",
    FlowDirection.RIGHT_TO_LEFT: "right to left",
    FlowDirection.BOTTOM_TO_TOP: "bottom to top",
    FlowDirection.TOP_TO_BOTTOM: "top to bottom",
}


@dataclass
class Fig11Result:
    """Per-direction block temperatures in Celsius."""

    temps_c: Dict[FlowDirection, Dict[str, float]]

    def hottest(self, direction: FlowDirection) -> str:
        """Name of the hottest unit for one flow direction."""
        return hottest_block(self.temps_c[direction])[0]

    def table_rows(self) -> List[List[str]]:
        """The figure's table: one row per unit, one column per
        direction, formatted like the paper."""
        directions = list(ALL_DIRECTIONS)
        header = ["units"] + [DIRECTION_LABELS[d] for d in directions]
        first = self.temps_c[directions[0]]
        rows = [header]
        for unit in first:
            rows.append(
                [unit] + [
                    f"{self.temps_c[d][unit]:.2f}" for d in directions
                ]
            )
        return rows

    def direction_span(self, unit: str) -> float:
        """Max-minus-min temperature of one unit across directions."""
        values = [self.temps_c[d][unit] for d in ALL_DIRECTIONS]
        return max(values) - min(values)


def fig11_campaign(
    nx: int = 32,
    ny: int = 32,
    velocity: float = 10.0,
    instructions: int = 500_000,
) -> CampaignSpec:
    """The Fig. 11 sweep as a campaign: one steady job per direction."""
    jobs = tuple(
        JobSpec.make(
            "steady_blocks",
            tag=direction.value,
            model=ModelSpec(
                chip="ev6", package="oil", nx=nx, ny=ny,
                direction=direction.value, velocity=velocity,
                uniform_h=False, include_secondary=True, ambient_c=45.0,
            ),
            power="gcc_average", instructions=instructions,
        )
        for direction in ALL_DIRECTIONS
    )
    return CampaignSpec(name="fig11", jobs=jobs)


def run_fig11(
    nx: int = 32,
    ny: int = 32,
    velocity: float = 10.0,
    instructions: int = 500_000,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    triage: Optional[TriageSettings] = None,
) -> Fig11Result:
    """Run the Fig. 11 flow-direction sweep through the campaign engine.

    With ``triage`` set, each direction is pre-screened analytically
    and only predicted-interesting directions get an RC solve; skipped
    directions report the (labelled) analytic temperatures.
    """
    campaign = fig11_campaign(nx=nx, ny=ny, velocity=velocity,
                              instructions=instructions)
    run: Union[CampaignRun, TriagedCampaignRun]
    if triage is not None:
        run = run_campaign_triaged(campaign, triage, jobs=jobs, cache=cache)
    else:
        run = run_campaign(campaign, jobs=jobs, cache=cache)
    temps: Dict[FlowDirection, Dict[str, float]] = {}
    for direction in ALL_DIRECTIONS:
        result = run.result_for(direction.value)
        names = result.meta["block_names"]
        temps[direction] = {
            name: kelvin - ZERO_CELSIUS_IN_KELVIN
            for name, kelvin in zip(names, result.arrays["block_temps_k"])
        }
    return Fig11Result(temps_c=temps)
