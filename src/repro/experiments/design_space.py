"""The thermal-package design space (paper Sections 2.1/2.3/6).

"The research presented in this paper suggests another interesting
dimension in the design space that chip architects can explore -- the
thermal package choice."  This module declares that sweep as a
campaign: one :mod:`~repro.campaign` job per package of the
Section 2.1 cooling taxonomy, each computing the numbers a
temperature-aware architect trades off -- peak steady temperature,
across-die gradient, and the short-term thermal time constant that
sets DTM responsiveness (plus, optionally, the warm-up time to steady
state that sets test/characterization cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from ..campaign import (
    CampaignRun,
    CampaignSpec,
    JobSpec,
    ModelSpec,
    ResultCache,
    TriagedCampaignRun,
    TriageSettings,
    run_campaign,
    run_campaign_triaged,
)
from ..units import ZERO_CELSIUS_IN_KELVIN

#: The Section 2.1 menu, in the paper's presentation order.
PACKAGE_MENU = (
    "AIR-SINK",
    "NATURAL",
    "OIL-SILICON",
    "OIL+TEC",
    "WATER-PLATE",
    "MICROCHANNEL",
)


@dataclass
class PackagePoint:
    """One package's figures of merit (temperatures as rises, K)."""

    package: str
    tmax: float       # peak steady rise over ambient
    dt: float         # across-die spread
    t63: float        # short-term single-block response time, s
    t63_warm: float   # full-workload warm-up time, s (nan if not run)
    ambient_k: float
    #: Which engine produced the point: ``"rc"`` (full solve) or
    #: ``"analytic"`` (triage-screened prediction, no transient data).
    engine: str = "rc"

    @property
    def tmax_c(self) -> float:
        """Peak steady temperature in Celsius (absolute)."""
        return self.tmax + self.ambient_k - ZERO_CELSIUS_IN_KELVIN


def design_space_campaign(
    nx: int = 16,
    ny: int = 16,
    packages: Optional[Sequence[str]] = None,
    instructions: int = 500_000,
    pulse_block: str = "IntReg",
    pulse_power: float = 3.0,
    pulse_t_end: float = 0.4,
    pulse_dt: float = 2e-3,
    warmup_t_end: float = 0.0,
    warmup_dt: float = 0.5,
) -> CampaignSpec:
    """The design-space sweep: one ``package_metrics`` job per package."""
    jobs = tuple(
        JobSpec.make(
            "package_metrics",
            tag=package,
            model=ModelSpec(
                chip="ev6", package=package, nx=nx, ny=ny, ambient_c=45.0
            ),
            power="gcc_average", instructions=instructions,
            pulse_block=pulse_block, pulse_power=pulse_power,
            pulse_t_end=pulse_t_end, pulse_dt=pulse_dt,
            warmup_t_end=warmup_t_end, warmup_dt=warmup_dt,
        )
        for package in (packages or PACKAGE_MENU)
    )
    return CampaignSpec(name="design_space", jobs=jobs)


def run_design_space(
    nx: int = 16,
    ny: int = 16,
    packages: Optional[Sequence[str]] = None,
    warmup_t_end: float = 0.0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    triage: Optional[TriageSettings] = None,
    **campaign_params,
) -> Dict[str, PackagePoint]:
    """Run the sweep; returns package name -> :class:`PackagePoint`.

    With ``triage`` set, packages whose predicted figure of merit
    stays clear of the threshold are not RC-solved; their points carry
    the analytic steady prediction (``engine="analytic"``,
    ``t63 = nan`` since the screen is steady-only).
    """
    spec = design_space_campaign(
        nx=nx, ny=ny, packages=packages, warmup_t_end=warmup_t_end,
        **campaign_params,
    )
    run: Union[CampaignRun, TriagedCampaignRun]
    if triage is not None:
        run = run_campaign_triaged(spec, triage, jobs=jobs, cache=cache)
    else:
        run = run_campaign(spec, jobs=jobs, cache=cache)
    points: Dict[str, PackagePoint] = {}
    for job in spec.jobs:
        result = run.result_for(job.tag)
        points[job.tag] = PackagePoint(
            package=job.tag,
            tmax=result.scalars["tmax"],
            dt=result.scalars["dt"],
            t63=result.scalars["t63"],
            t63_warm=result.scalars.get("t63_warm", float("nan")),
            ambient_k=result.meta["ambient_k"],
            engine=str(result.meta.get("engine", "rc")),
        )
    return points
