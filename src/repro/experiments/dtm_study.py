"""DTM policy comparison across the two packages, as a campaign.

The DTM literature the paper builds on (Brooks & Martonosi; Skadron et
al.) compares response mechanisms -- fetch throttling, DVFS, clock
gating.  The paper's contribution is that the *package* changes which
parameters work; this module declares the (package x policy) product
as a :mod:`~repro.campaign` sweep so each closed-loop simulation is an
independent, cacheable job, and reports the peak-temperature /
performance tradeoff each combination achieves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..campaign import CampaignSpec, JobSpec, ModelSpec, ResultCache, run_campaign

#: Blocks a core-local policy (throttling, gating) acts on.
CORE_BLOCKS = (
    "Icache", "IntReg", "IntExec", "IntQ", "IntMap", "LdStQ", "Dcache",
)

#: The three baseline policies: name -> (strength, targets).
BASELINE_POLICIES = {
    "fetch_throttle": (0.3, CORE_BLOCKS),
    "dvfs": (0.7, None),
    "clock_gating": (0.15, CORE_BLOCKS),
}


@dataclass
class DTMPolicyOutcome:
    """What one (package, policy) closed-loop run achieved."""

    package: str
    policy: str
    peak_temperature: float  # absolute Kelvin
    performance: float       # fraction of nominal work completed
    engaged_fraction: float
    n_engagements: int


def _package_models(nx: int, ny: int) -> Dict[str, ModelSpec]:
    return {
        "oil": ModelSpec(
            chip="ev6", package="oil", nx=nx, ny=ny, uniform_h=True,
            target_resistance=1.0, include_secondary=False, ambient_c=45.0,
        ),
        "air": ModelSpec(
            chip="ev6", package="air", nx=nx, ny=ny,
            convection_resistance=1.0, include_secondary=False,
            ambient_c=45.0,
        ),
    }


def dtm_campaign(
    nx: int = 16,
    ny: int = 16,
    cycles: int = 6,
    trace_dt: float = 1e-3,
    threshold_rise: float = 22.0,
    engagement_duration: float = 10e-3,
) -> CampaignSpec:
    """The (package x policy) sweep of the DTM comparison bench."""
    jobs = []
    for package, model in _package_models(nx, ny).items():
        for policy, (strength, targets) in BASELINE_POLICIES.items():
            jobs.append(JobSpec.make(
                "dtm_policy",
                tag=f"{package}/{policy}",
                model=model,
                policy=policy, strength=strength, targets=targets,
                pulse_block="Dcache", on_power=14.0,
                on_time=0.015, off_time=0.035,
                cycles=cycles, trace_dt=trace_dt,
                base_power={"Dcache": 4.0, "IntReg": 1.0},
                sensor_block="Dcache", threshold_rise=threshold_rise,
                engagement_duration=engagement_duration,
            ))
    return CampaignSpec(name="dtm_policies", jobs=tuple(jobs))


def run_dtm_comparison(
    nx: int = 16,
    ny: int = 16,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    batch: bool = True,
    **campaign_params,
) -> Dict[Tuple[str, str], DTMPolicyOutcome]:
    """Run the sweep; returns (package, policy) -> outcome.

    With ``batch`` (the default) each package's three policy runs
    execute as one lockstep solve — same numbers, one factorization
    and one stepping loop per package instead of three.
    """
    spec = dtm_campaign(nx=nx, ny=ny, **campaign_params)
    run = run_campaign(spec, jobs=jobs, cache=cache, batch=batch)
    rows: Dict[Tuple[str, str], DTMPolicyOutcome] = {}
    for job in spec.jobs:
        package, policy = job.tag.split("/", 1)
        result = run.result_for(job.tag)
        rows[(package, policy)] = DTMPolicyOutcome(
            package=package,
            policy=policy,
            peak_temperature=result.scalars["peak_temperature_k"],
            performance=result.scalars["performance"],
            engaged_fraction=result.scalars["engaged_fraction"],
            n_engagements=int(result.scalars["n_engagements"]),
        )
    return rows
