"""Paper experiments: one module per figure/table of the evaluation.

Every module exposes a ``run_figNN`` function returning a result
object with the numbers the paper's figure reports, plus helpers the
benchmark harness asserts against.  ``common`` holds the shared setup
(standard dies, packages, the cached gcc-like EV6 power trace).
"""

from . import common
from .fig02 import run_fig02, Fig02Result
from .fig03 import run_fig03, Fig03Result
from .fig04 import run_fig04, Fig04Result
from .fig05 import run_fig05, Fig05Result
from .fig06 import run_fig06, Fig06Result
from .fig07 import run_fig07, Fig07Result
from .fig08 import run_fig08, Fig08Result
from .fig09 import run_fig09, Fig09Result
from .fig10 import run_fig10, Fig10Result
from .fig11 import run_fig11, Fig11Result
from .fig12 import run_fig12, Fig12Result
from .design_space import run_design_space, PackagePoint
from .dtm_study import run_dtm_comparison, DTMPolicyOutcome

__all__ = [
    "common",
    "run_design_space", "PackagePoint",
    "run_dtm_comparison", "DTMPolicyOutcome",
    "run_fig02", "Fig02Result",
    "run_fig03", "Fig03Result",
    "run_fig04", "Fig04Result",
    "run_fig05", "Fig05Result",
    "run_fig06", "Fig06Result",
    "run_fig07", "Fig07Result",
    "run_fig08", "Fig08Result",
    "run_fig09", "Fig09Result",
    "run_fig10", "Fig10Result",
    "run_fig11", "Fig11Result",
    "run_fig12", "Fig12Result",
]
