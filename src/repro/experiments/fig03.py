"""Fig. 3 -- steady-state validation with a concentrated hot spot.

Paper setup: the same 20 mm die and 10 m/s oil flow as Fig. 2, but the
heat source is reduced to a 2 mm x 2 mm, 10 W region at the die center,
creating a steep spatial gradient.  The paper compares on-die maximum
temperature (Tmax), minimum temperature (Tmin) and their difference
(dT) between modified HotSpot and ANSYS.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..convection.flow import FlowSpec
from ..floorplan import single_hot_block_floorplan
from ..package import oil_silicon_package
from ..rcmodel import ThermalGridModel
from ..solver import steady_state
from ..validation import ReferenceFDSolver
from .common import VALIDATION_DIE, VALIDATION_VELOCITY


@dataclass
class Fig03Result:
    """Tmax / Tmin / dT (temperature rises, K) from both solvers."""

    rc_tmax: float
    rc_tmin: float
    fd_tmax: float
    fd_tmin: float

    @property
    def rc_dt(self) -> float:
        """Across-die temperature difference of the RC model."""
        return self.rc_tmax - self.rc_tmin

    @property
    def fd_dt(self) -> float:
        """Across-die temperature difference of the reference solver."""
        return self.fd_tmax - self.fd_tmin

    @property
    def tmax_agreement(self) -> float:
        """Relative Tmax difference between the solvers."""
        return abs(self.rc_tmax - self.fd_tmax) / self.fd_tmax


def run_fig03(
    hot_size: float = 2e-3,
    power: float = 10.0,
    rc_grid: int = 40,
    fd_grid: int = 60,
    fd_layers: int = 5,
) -> Fig03Result:
    """Run the Fig. 3 validation experiment."""
    die = VALIDATION_DIE
    flow = FlowSpec(velocity=VALIDATION_VELOCITY, uniform=True)

    plan = single_hot_block_floorplan(
        die["width"], die["height"], hot_size, hot_size
    )
    config = oil_silicon_package(
        die["width"], die["height"], velocity=VALIDATION_VELOCITY,
        die_thickness=die["thickness"], uniform_h=True,
        include_secondary=False, ambient=300.0,
    )
    model = ThermalGridModel(plan, config, nx=rc_grid, ny=rc_grid)
    rise = steady_state(model.network, model.node_power({"hot": power}))
    cells = model.silicon_cell_rise(rise)

    fd = ReferenceFDSolver(
        die["width"], die["height"], die["thickness"], flow,
        nx=fd_grid, ny=fd_grid, nz=fd_layers,
    )
    lo = (die["width"] - hot_size) / 2
    fd_rise = fd.steady_rise(
        fd.rect_power(lo, lo + hot_size, lo, lo + hot_size, power)
    )
    fd_bottom = fd.bottom_rise(fd_rise)

    return Fig03Result(
        rc_tmax=float(cells.max()),
        rc_tmin=float(cells.min()),
        fd_tmax=float(fd_bottom.max()),
        fd_tmin=float(fd_bottom.min()),
    )
