"""Fig. 7 -- lumped thermal circuits and their time constants.

The paper's Fig. 7 is an analytical figure: equivalent two-node RC
circuits for each package, from which Eqns 5-6 predict

* AIR-SINK short-term:  tau = R_Si C_Si         (milliseconds)
* AIR-SINK long-term:   tau = Rconv C_sink      (tens of seconds)
* OIL-SILICON:          tau = Rconv (C_Si + C_oil)  (~a second)

and the observation that Rconv >> R_Si (1.042 vs 0.0125 K/W in the
paper's setup) makes OIL-SILICON's short-term response two orders of
magnitude slower.  This experiment computes the analytic constants for
the validation die and cross-checks them against time constants fitted
from the full grid model's step responses.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..analysis.time_constants import rise_time
from ..convection.flow import FlowSpec
from ..floorplan import uniform_grid_floorplan
from ..materials import COPPER
from ..package import AirSinkGeometry, air_sink_package, oil_silicon_package
from ..rcmodel import ThermalGridModel
from ..rcmodel.circuits import (
    air_sink_long_term_time_constant,
    air_sink_short_term_time_constant,
    oil_silicon_time_constant,
    silicon_capacitance,
    silicon_vertical_resistance,
)
from ..solver import transient_step_response
from .common import VALIDATION_DIE, VALIDATION_VELOCITY


@dataclass
class Fig07Result:
    """Analytic vs fitted time constants (seconds)."""

    r_si: float
    c_si: float
    c_oil: float
    c_sink: float
    rconv: float
    tau_short_air_analytic: float
    tau_long_air_analytic: float
    tau_oil_analytic: float
    tau_oil_fitted: float
    tau_long_air_fitted: float

    @property
    def resistance_ratio(self) -> float:
        """Rconv / R_Si (paper quotes ~83x: 1.042 / 0.0125)."""
        return self.rconv / self.r_si

    @property
    def oil_agreement(self) -> float:
        """Relative error between analytic and fitted oil tau."""
        return abs(self.tau_oil_fitted - self.tau_oil_analytic) \
            / self.tau_oil_analytic


def run_fig07(
    nx: int = 16,
    ny: int = 16,
    dt: float = 0.01,
) -> Fig07Result:
    """Compute and cross-check the Fig. 7 time constants."""
    die = VALIDATION_DIE
    area = die["width"] * die["height"]
    flow = FlowSpec(velocity=VALIDATION_VELOCITY, uniform=True)

    r_si = silicon_vertical_resistance(area, die["thickness"])
    c_si = silicon_capacitance(area, die["thickness"])
    rconv = flow.overall_resistance(die["width"], die["height"])
    c_oil = flow.capacitance_per_area(die["width"], die["height"]) * area
    geometry = AirSinkGeometry()
    c_sink = (
        COPPER.volumetric_heat * geometry.sink_size ** 2
        * geometry.sink_thickness
    )

    tau_short_air = air_sink_short_term_time_constant(r_si, c_si)
    tau_long_air = air_sink_long_term_time_constant(rconv, c_sink)
    tau_oil = oil_silicon_time_constant(rconv, c_si, c_oil)

    # Fit the oil constant from the full model's uniform step response.
    plan = uniform_grid_floorplan(die["width"], die["height"], prefix="die")
    oil_cfg = oil_silicon_package(
        die["width"], die["height"], velocity=VALIDATION_VELOCITY,
        die_thickness=die["thickness"], uniform_h=True,
        include_secondary=False, ambient=300.0,
    )
    oil_model = ThermalGridModel(plan, oil_cfg, nx=nx, ny=ny)
    oil_response = transient_step_response(
        oil_model.network, oil_model.node_power({"die": 100.0}),
        t_end=max(5.0 * tau_oil, 20 * dt), dt=dt,
        projector=oil_model.block_rise,
    )
    tau_oil_fit = rise_time(
        oil_response.times, oil_response.states[:, 0], fraction=0.632
    )

    # Fit the air long-term constant the same way (coarse dt is fine;
    # the constant is tens of seconds).
    # The fan-side lumped capacitance is zeroed so the fitted constant
    # isolates Eqn 5/6's Rconv * C_sink (the analytic circuit has no
    # coolant capacitance on the air side).
    air_cfg = air_sink_package(
        die["width"], die["height"], convection_resistance=rconv,
        die_thickness=die["thickness"], geometry=geometry,
        convection_capacitance=0.0, ambient=300.0,
    )
    air_model = ThermalGridModel(plan, air_cfg, nx=nx, ny=ny)
    air_dt = max(tau_long_air / 200.0, dt)
    air_response = transient_step_response(
        air_model.network, air_model.node_power({"die": 100.0}),
        t_end=5.0 * tau_long_air, dt=air_dt,
        projector=air_model.block_rise,
    )
    tau_air_fit = rise_time(
        air_response.times, air_response.states[:, 0], fraction=0.632
    )

    return Fig07Result(
        r_si=r_si,
        c_si=c_si,
        c_oil=c_oil,
        c_sink=c_sink,
        rconv=rconv,
        tau_short_air_analytic=tau_short_air,
        tau_long_air_analytic=tau_long_air,
        tau_oil_analytic=tau_oil,
        tau_oil_fitted=tau_oil_fit,
        tau_long_air_fitted=tau_air_fit,
    )
