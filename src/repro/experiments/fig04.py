"""Fig. 4 -- steady-state map of an AMD Athlon-like die under oil.

Paper setup: the Athlon floorplan (derived from the die photo) with
per-block powers extracted from Mesa-Martinez et al., cooled by the
IR-imaging oil flow with the secondary heat path included.  The paper's
qualitative validation: hottest block is ``sched`` at about 73 C
(IR snapshot: ~70 C), coolest active area about 45 C (IR: ~45 C),
excluding the blank edge fillers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..analysis.thermal_maps import coolest_block, hottest_block
from ..floorplan import athlon_reference_power
from ..solver import steady_block_temperatures, steady_state
from ..units import ZERO_CELSIUS_IN_KELVIN
from .common import athlon_oil_model


@dataclass
class Fig04Result:
    """Per-block Athlon temperatures (Celsius) under OIL-SILICON."""

    block_temps_c: Dict[str, float]
    cell_map_c: np.ndarray  # (ny, nx) die temperature map

    @property
    def hottest(self):
        """(name, temp C) of the hottest block."""
        return hottest_block(self.block_temps_c)

    @property
    def coolest_active(self):
        """(name, temp C) of the coolest non-blank block."""
        return coolest_block(self.block_temps_c, exclude_prefixes=("blank",))


def run_fig04(nx: int = 32, ny: int = 32) -> Fig04Result:
    """Run the Fig. 4 Athlon steady-state experiment."""
    model = athlon_oil_model(nx=nx, ny=ny)
    powers = athlon_reference_power()
    temps_k = steady_block_temperatures(model, powers)
    rise = steady_state(model.network, model.node_power(powers))
    cell_map = (
        model.mapping.as_grid(model.silicon_cell_rise(rise))
        + model.config.ambient - ZERO_CELSIUS_IN_KELVIN
    )
    temps_c = {k: v - ZERO_CELSIUS_IN_KELVIN for k, v in temps_k.items()}
    return Fig04Result(block_temps_c=temps_c, cell_map_c=cell_map)
