"""One-shot reproduction report: run every figure, write markdown.

``run_all_experiments`` executes every figure/table experiment at a
chosen resolution and collects the quantities EXPERIMENTS.md tracks,
each paired with the paper's published value and a pass/fail check of
the qualitative claim.  ``format_report`` renders the result as a
markdown table; the CLI exposes it as ``python -m repro reproduce``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..convection.flow import FlowDirection
from . import (
    run_fig02,
    run_fig03,
    run_fig04,
    run_fig05,
    run_fig06,
    run_fig07,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
)


@dataclass
class CheckRow:
    """One paper-vs-measured line of the report."""

    figure: str
    quantity: str
    paper: str
    measured: str
    passed: bool


@dataclass
class ReproductionReport:
    """All check rows plus bookkeeping."""

    rows: List[CheckRow] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def n_passed(self) -> int:
        """Number of checks that passed."""
        return sum(row.passed for row in self.rows)

    @property
    def all_passed(self) -> bool:
        """Whether every claim check passed."""
        return self.n_passed == len(self.rows)

    def add(self, figure: str, quantity: str, paper: str,
            measured: str, passed: bool) -> None:
        """Append one check row."""
        self.rows.append(CheckRow(figure, quantity, paper, measured,
                                  bool(passed)))


def run_all_experiments(
    fast: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> ReproductionReport:
    """Run every experiment and collect paper-vs-measured checks.

    ``fast`` lowers grid resolutions and trace lengths (the bench suite
    runs the full-resolution versions); ``progress`` receives a line
    per figure if given.
    """
    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    start = time.time()
    report = ReproductionReport()
    grid = 20 if fast else 32

    note("Fig. 2: transient validation ...")
    fig02 = run_fig02(rc_grid=12 if fast else 20,
                      fd_grid=20 if fast else 32,
                      fd_layers=3 if fast else 4)
    report.add("Fig. 2", "solver agreement (steady)", "close",
               f"{100 * fig02.steady_agreement:.1f}%",
               fig02.steady_agreement < 0.05)
    report.add("Fig. 2", "Rconv (K/W)", "~1.0", f"{fig02.rconv:.2f}",
               0.7 < fig02.rconv < 1.3)
    tau = fig02.time_constant_estimate()
    report.add("Fig. 2", "time constant (s)", "O(1 s)", f"{tau:.2f}",
               0.1 < tau < 1.5)

    note("Fig. 3: steady validation ...")
    fig03 = run_fig03(rc_grid=24 if fast else 40,
                      fd_grid=36 if fast else 60,
                      fd_layers=3 if fast else 5)
    report.add("Fig. 3", "Tmax agreement", "close",
               f"{100 * fig03.tmax_agreement:.1f}%",
               fig03.tmax_agreement < 0.10)

    note("Fig. 4: Athlon map ...")
    fig04 = run_fig04(nx=grid, ny=grid)
    hot_name, hot_temp = fig04.hottest
    _, cool_temp = fig04.coolest_active
    report.add("Fig. 4", "hottest block", "sched ~73 C",
               f"{hot_name} {hot_temp:.1f} C",
               hot_name == "sched" and abs(hot_temp - 72) < 5)
    report.add("Fig. 4", "coolest active", "~45 C",
               f"{cool_temp:.1f} C", abs(cool_temp - 46) < 5)

    note("Fig. 5: secondary path ablation ...")
    fig05 = run_fig05(nx=grid, ny=grid)
    report.add("Fig. 5a", "oil error w/o secondary", "> 10 C",
               f"{fig05.oil_max_error_c:.1f} C",
               fig05.oil_max_error_c > 10.0)
    worst_air = max(
        abs(fig05.air_with_secondary[n] - fig05.air_without_secondary[n])
        / fig05.air_without_secondary[n]
        for n in fig05.air_with_secondary
    )
    report.add("Fig. 5b", "air change w/ secondary", "< 1%",
               f"{100 * worst_air:.2f}%", worst_air < 0.01)

    note("Fig. 6: warm-up transients ...")
    fig06 = run_fig06(nx=16 if fast else 24, dt=0.02 if fast else 0.01)
    report.add("Fig. 6", "oil settles within 6 s", "yes",
               f"{100 * fig06.fraction_of_steady_at_end('oil'):.0f}%",
               fig06.fraction_of_steady_at_end("oil") > 0.95)
    report.add("Fig. 6", "air still warming at 6 s", "yes",
               f"{100 * fig06.fraction_of_steady_at_end('air'):.0f}%",
               fig06.fraction_of_steady_at_end("air") < 0.85)
    report.add("Fig. 6", "steady hot: oil >> air", "137 vs 63 C",
               f"{fig06.oil_hot_steady:.0f} vs "
               f"{fig06.air_hot_steady:.0f} C",
               fig06.oil_hot_steady > fig06.air_hot_steady + 15)
    report.add("Fig. 6", "steady cool: oil < air", "42 vs 55 C",
               f"{fig06.oil_cool_steady:.0f} vs "
               f"{fig06.air_cool_steady:.0f} C",
               fig06.oil_cool_steady < fig06.air_cool_steady)

    note("Fig. 7: time constants ...")
    fig07 = run_fig07(nx=8 if fast else 16)
    report.add("Fig. 7", "R_Si (K/W)", "0.0125", f"{fig07.r_si:.4f}",
               abs(fig07.r_si - 0.0125) < 1e-3)
    report.add("Fig. 7", "tau_oil model vs Eqn 6", "match",
               f"{fig07.tau_oil_fitted:.2f} vs "
               f"{fig07.tau_oil_analytic:.2f} s",
               fig07.oil_agreement < 0.15)

    note("Fig. 8: pulse oscillation ...")
    fig08 = run_fig08(nx=16 if fast else 24, dt=1e-3 if fast else 0.5e-3)
    oil_rec = fig08.recovery_fraction(fig08.oil_trace)
    air_rec = fig08.recovery_fraction(fig08.air_trace)
    report.add("Fig. 8", "oil cools much slower", "yes",
               f"recovered {100 * oil_rec:.0f}% vs "
               f"{100 * air_rec:.0f}% at +15 ms",
               air_rec - oil_rec > 0.15)

    note("Fig. 9: hot-spot migration ...")
    fig09 = run_fig09(nx=16 if fast else 24)
    report.add("Fig. 9", "hottest at 14 ms (air/oil)", "FPMap / IntReg",
               f"{fig09.air_hottest_at_observation} / "
               f"{fig09.oil_hottest_at_observation}",
               fig09.air_hottest_at_observation == "FPMap"
               and fig09.oil_hottest_at_observation == "IntReg")

    note("Fig. 10: steady maps ...")
    fig10 = run_fig10(nx=grid, ny=grid)
    report.add("Fig. 10", "oil hotter Tmax", "~+30 C",
               f"+{fig10.tmax_difference:.1f} C",
               fig10.tmax_difference > 5)
    report.add("Fig. 10", "oil bigger dT", "~+55 C",
               f"+{fig10.gradient_difference:.1f} C",
               fig10.gradient_difference > 15)

    note("Fig. 11: flow directions ...")
    fig11 = run_fig11(nx=24 if fast else 32)
    hottest = [
        fig11.hottest(d) for d in (
            FlowDirection.LEFT_TO_RIGHT, FlowDirection.RIGHT_TO_LEFT,
            FlowDirection.BOTTOM_TO_TOP, FlowDirection.TOP_TO_BOTTOM,
        )
    ]
    report.add("Fig. 11", "hottest per direction",
               "IntReg x3, then Dcache", " / ".join(hottest),
               hottest == ["IntReg", "IntReg", "IntReg", "Dcache"])

    note("Fig. 12: trace-driven runs ...")
    fig12 = run_fig12(duration=0.02 if fast else 0.04,
                      nx=12 if fast else 24)
    interval_air = fig12.sampling_interval_for("air", "IntReg", 0.1)
    interval_oil = fig12.sampling_interval_for("oil", "IntReg", 0.1)
    report.add("Fig. 12", "sensor sampling @0.1 C", "~60 us",
               f"{1e6 * interval_air:.0f} / {1e6 * interval_oil:.0f} us",
               5e-6 < interval_air < 5e-4 and 5e-6 < interval_oil < 5e-4)
    report.add("Fig. 12", "top blocks include core+cache", "yes",
               ", ".join(fig12.hottest_five_air[:3]),
               {"IntReg", "Dcache"} <= set(fig12.hottest_five_air))

    report.elapsed_seconds = time.time() - start
    return report


def format_report(report: ReproductionReport) -> str:
    """Render the report as markdown."""
    lines = [
        "# Reproduction report",
        "",
        f"{report.n_passed}/{len(report.rows)} claim checks passed "
        f"({report.elapsed_seconds:.0f} s).",
        "",
        "| figure | quantity | paper | measured | check |",
        "|---|---|---|---|---|",
    ]
    for row in report.rows:
        mark = "PASS" if row.passed else "FAIL"
        lines.append(
            f"| {row.figure} | {row.quantity} | {row.paper} "
            f"| {row.measured} | {mark} |"
        )
    return "\n".join(lines) + "\n"
