"""Shared setup for the paper experiments.

Centralizes the standard geometries, packages and workload powers so
every figure reproduces from the same baseline, exactly as the paper's
experiments all share one modified-HotSpot configuration.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional


from ..convection.flow import FlowDirection
from ..floorplan import athlon_floorplan, ev6_floorplan
from ..microarch import MicroarchSimulator, TraceSynthesizer, gcc_like_workload
from ..package import air_sink_package, oil_silicon_package
from ..power.trace import PowerTrace
from ..rcmodel import ThermalGridModel
from ..units import ZERO_CELSIUS_IN_KELVIN, mm

#: The validation die of Figs. 2-3: 20 mm x 20 mm x 0.5 mm silicon.
VALIDATION_DIE = dict(width=mm(20.0), height=mm(20.0), thickness=mm(0.5))

#: Oil velocity of the validation experiments (10 m/s).
VALIDATION_VELOCITY = 10.0

#: Oil velocity for the Athlon IR-bench experiments (Figs. 4-5).  The
#: published measurement setup circulated oil at a much gentler rate
#: than the 10 m/s validation flow; 3 m/s reproduces its temperature
#: scale and makes the secondary path carry the significant heat share
#: the paper's Fig. 5(a) reports.
ATHLON_OIL_VELOCITY = 3.0

#: Default grid resolution for experiment runs (benches may lower it).
DEFAULT_GRID = 32


def celsius(value: float) -> float:
    """Celsius -> Kelvin shorthand for experiment configs."""
    return value + ZERO_CELSIUS_IN_KELVIN


def ev6_oil_model(
    nx: int = DEFAULT_GRID,
    ny: int = DEFAULT_GRID,
    direction: FlowDirection = FlowDirection.LEFT_TO_RIGHT,
    velocity: float = VALIDATION_VELOCITY,
    uniform_h: bool = False,
    target_resistance: Optional[float] = None,
    include_secondary: bool = True,
    ambient: float = celsius(45.0),
) -> ThermalGridModel:
    """EV6 die in the OIL-SILICON package."""
    plan = ev6_floorplan()
    config = oil_silicon_package(
        plan.die_width, plan.die_height,
        velocity=velocity, direction=direction, uniform_h=uniform_h,
        target_resistance=target_resistance,
        include_secondary=include_secondary, ambient=ambient,
    )
    return ThermalGridModel(plan, config, nx=nx, ny=ny)


def ev6_air_model(
    nx: int = DEFAULT_GRID,
    ny: int = DEFAULT_GRID,
    convection_resistance: float = 1.0,
    include_secondary: bool = False,
    ambient: float = celsius(45.0),
) -> ThermalGridModel:
    """EV6 die in the AIR-SINK package."""
    plan = ev6_floorplan()
    config = air_sink_package(
        plan.die_width, plan.die_height,
        convection_resistance=convection_resistance,
        include_secondary=include_secondary, ambient=ambient,
    )
    return ThermalGridModel(plan, config, nx=nx, ny=ny)


def _trace_store():
    """The machine-wide on-disk trace cache, or ``None`` when disabled.

    Routed through :mod:`repro.campaign.cache` so the deterministic
    functional simulations below are computed once per machine rather
    than once per process — campaign workers in fresh processes load
    the stored trace instead of re-simulating.  Disable with
    ``REPRO_DISK_CACHE=0``; relocate with ``REPRO_CACHE_DIR``.
    """
    from ..campaign.cache import machine_cache

    return machine_cache()


@lru_cache(maxsize=4)
def gcc_power_trace(
    instructions: int = 500_000, seed: int = 0
) -> PowerTrace:
    """The gcc-like EV6 power trace from the microarchitecture simulator.

    Cached twice over: in-process by ``lru_cache`` and on disk by the
    campaign trace store — the functional simulation is deterministic
    for a given (instructions, seed) pair, and several figures (and
    every campaign worker) share it.
    """
    key = f"gcc_power_trace/v1/instructions={instructions}/seed={seed}"
    store = _trace_store()
    if store is not None:
        cached = store.get_trace(key)
        if cached is not None:
            return cached
    plan = ev6_floorplan()
    simulator = MicroarchSimulator(plan)
    trace = simulator.run(gcc_like_workload(instructions=instructions, seed=seed))
    if store is not None:
        store.put_trace(key, trace)
    return trace


def gcc_average_power(instructions: int = 500_000) -> Dict[str, float]:
    """Time-averaged per-block gcc power (W) on the EV6 floorplan."""
    trace = gcc_power_trace(instructions)
    plan = ev6_floorplan()
    return plan.power_dict(trace.average())


@lru_cache(maxsize=4)
def gcc_synthesized_trace(
    duration: float,
    instructions: int = 500_000,
    seed: int = 0,
    mean_dwell: float = 0.005,
) -> PowerTrace:
    """A long gcc-like power trace for the Fig. 12 experiments.

    Functionally simulates ``instructions``, then statistically extends
    the phase-labelled window process to ``duration`` seconds with
    :class:`~repro.microarch.TraceSynthesizer` (see that module for why
    this is the right tool for 100 ms-scale thermal runs).  Like
    :func:`gcc_power_trace`, the synthesized trace is stored in the
    machine-wide disk cache keyed on every generation parameter.
    """
    key = (
        f"gcc_synthesized_trace/v1/duration={duration!r}/"
        f"instructions={instructions}/seed={seed}/mean_dwell={mean_dwell!r}"
    )
    store = _trace_store()
    if store is not None:
        cached = store.get_trace(key)
        if cached is not None:
            return cached
    plan = ev6_floorplan()
    simulator = MicroarchSimulator(plan)
    base = simulator.run(gcc_like_workload(instructions=instructions, seed=seed))
    synthesizer = TraceSynthesizer(
        base, simulator.last_window_phases, seed=seed
    )
    trace = synthesizer.synthesize(duration, mean_dwell=mean_dwell)
    if store is not None:
        store.put_trace(key, trace)
    return trace


def athlon_oil_model(
    nx: int = DEFAULT_GRID,
    ny: int = DEFAULT_GRID,
    include_secondary: bool = True,
    ambient: float = celsius(37.0),
) -> ThermalGridModel:
    """Athlon die under oil (the Fig. 4-5 configuration)."""
    plan = athlon_floorplan()
    config = oil_silicon_package(
        plan.die_width, plan.die_height,
        velocity=ATHLON_OIL_VELOCITY,
        direction=FlowDirection.LEFT_TO_RIGHT,
        include_secondary=include_secondary,
        ambient=ambient,
    )
    return ThermalGridModel(plan, config, nx=nx, ny=ny)


def athlon_air_model(
    nx: int = DEFAULT_GRID,
    ny: int = DEFAULT_GRID,
    convection_resistance: float = 1.0,
    include_secondary: bool = False,
    ambient: float = celsius(37.0),
) -> ThermalGridModel:
    """Athlon die under the AIR-SINK package."""
    plan = athlon_floorplan()
    config = air_sink_package(
        plan.die_width, plan.die_height,
        convection_resistance=convection_resistance,
        include_secondary=include_secondary,
        ambient=ambient,
    )
    return ThermalGridModel(plan, config, nx=nx, ny=ny)


def kelvin_dict_to_celsius(temps: Dict[str, float]) -> Dict[str, float]:
    """Convert a block-temperature dict from Kelvin to Celsius."""
    return {k: v - ZERO_CELSIUS_IN_KELVIN for k, v in temps.items()}
