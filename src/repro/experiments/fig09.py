"""Fig. 9 -- transient hot-spot migration after a power hand-off.

Paper setup: on the EV6, apply 2 W to IntReg for 10 ms with FPMap idle;
at 10 ms, turn IntReg off and FPMap on (2 W).  At 14 ms:

* AIR-SINK: FPMap has already overtaken IntReg as the hottest of the
  pair (fast short-term response: IntReg cools, FPMap heats quickly);
* OIL-SILICON: IntReg is still hotter (slow short-term response).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power.synthetic import power_handoff
from ..solver import simulate_schedule
from .common import celsius, ev6_air_model, ev6_oil_model


@dataclass
class Fig09Result:
    """IntReg / FPMap temperature-rise traces for both packages (K)."""

    times: np.ndarray
    air_intreg: np.ndarray
    air_fpmap: np.ndarray
    oil_intreg: np.ndarray
    oil_fpmap: np.ndarray
    switch_time: float
    observe_time: float

    def _at(self, series: np.ndarray, time: float) -> float:
        index = int(np.argmin(np.abs(self.times - time)))
        return float(series[index])

    @property
    def air_hottest_at_observation(self) -> str:
        """Which block is hotter at the observation instant (AIR-SINK)."""
        intreg = self._at(self.air_intreg, self.observe_time)
        fpmap = self._at(self.air_fpmap, self.observe_time)
        return "IntReg" if intreg >= fpmap else "FPMap"

    @property
    def oil_hottest_at_observation(self) -> str:
        """Which block is hotter at the observation instant (OIL)."""
        intreg = self._at(self.oil_intreg, self.observe_time)
        fpmap = self._at(self.oil_fpmap, self.observe_time)
        return "IntReg" if intreg >= fpmap else "FPMap"


def run_fig09(
    power: float = 2.0,
    switch_time: float = 0.010,
    total_time: float = 0.016,
    observe_time: float = 0.014,
    dt: float = 0.2e-3,
    nx: int = 24,
    ny: int = 24,
) -> Fig09Result:
    """Run the Fig. 9 hot-spot migration experiment."""
    ambient = celsius(45.0)
    oil = ev6_oil_model(
        nx=nx, ny=ny, uniform_h=True, target_resistance=1.0,
        include_secondary=False, ambient=ambient,
    )
    air = ev6_air_model(
        nx=nx, ny=ny, convection_resistance=1.0, ambient=ambient
    )
    plan = oil.floorplan
    trace = power_handoff(
        plan, "IntReg", "FPMap", power, switch_time, total_time, dt
    )
    intreg = plan.index_of("IntReg")
    fpmap = plan.index_of("FPMap")

    def run(model):
        schedule = trace.to_schedule(model)
        result = simulate_schedule(
            model.network, schedule, dt=dt, projector=model.block_rise
        )
        return result.times, result.states[:, intreg], result.states[:, fpmap]

    times, air_i, air_f = run(air)
    _, oil_i, oil_f = run(oil)
    return Fig09Result(
        times=times,
        air_intreg=air_i,
        air_fpmap=air_f,
        oil_intreg=oil_i,
        oil_fpmap=oil_f,
        switch_time=switch_time,
        observe_time=observe_time,
    )
