"""Material property database.

Thermal properties of the solids and fluids that appear in the two
cooling configurations studied by the paper.  Values are representative
room-temperature properties drawn from the HotSpot tool defaults and
standard heat-transfer references (Cengel, *Heat and Mass Transfer*,
the reference the paper itself cites for the correlations).

All properties are SI:

* ``conductivity``      -- W / (m K)
* ``density``           -- kg / m^3
* ``specific_heat``     -- J / (kg K)
* ``volumetric_heat``   -- J / (m^3 K)  (derived: density * specific_heat)
"""

from __future__ import annotations

from dataclasses import dataclass

from .units import require_positive


@dataclass(frozen=True)
class Material:
    """An isotropic solid material participating in heat conduction."""

    name: str
    conductivity: float
    density: float
    specific_heat: float

    def __post_init__(self) -> None:
        require_positive("conductivity", self.conductivity)
        require_positive("density", self.density)
        require_positive("specific_heat", self.specific_heat)

    @property
    def volumetric_heat(self) -> float:
        """Volumetric heat capacity in J/(m^3 K)."""
        return self.density * self.specific_heat

    def with_conductivity(self, conductivity: float) -> "Material":
        """Return a copy with a different conductivity.

        Useful for modelling effective-medium layers (e.g. interconnect
        stacks whose conductivity depends on metal density).
        """
        return Material(self.name, conductivity, self.density, self.specific_heat)


# --- Solids -----------------------------------------------------------------

#: Bulk silicon.  HotSpot default: k = 100 W/mK (slightly below pure-crystal
#: 148 W/mK to account for doping and operating temperature), volumetric
#: heat 1.75e6 J/m^3K.
SILICON = Material("silicon", conductivity=100.0, density=2330.0, specific_heat=751.1)

#: Copper, for the heat spreader and heatsink base.  HotSpot default:
#: k = 400 W/mK, volumetric heat 3.55e6 J/m^3K.
COPPER = Material("copper", conductivity=400.0, density=8933.0, specific_heat=397.4)

#: Thermal interface material between die and spreader.  HotSpot default
#: k = 4 W/mK (a high-end thermal grease / phase-change film).
THERMAL_INTERFACE = Material(
    "thermal_interface", conductivity=4.0, density=2600.0, specific_heat=900.0
)

#: Effective on-chip interconnect stack (metal levels + inter-layer
#: dielectric).  Copper wires raise the effective conductivity well above
#: the oxide's 1.4 W/mK; 2.25 W/mK follows HotSpot 5.0's secondary-path
#: default for the metal layer.
INTERCONNECT = Material(
    "interconnect", conductivity=2.25, density=2800.0, specific_heat=800.0
)

#: C4 solder bumps embedded in underfill epoxy, as an effective medium:
#: ~25% bump coverage at k ~ 50 W/mK in parallel with underfill epoxy
#: (~0.6 W/mK) gives an effective through-plane conductivity near
#: 0.25*50 + 0.75*0.6 ~ 13; derated for pad/via constriction.
C4_UNDERFILL = Material(
    "c4_underfill", conductivity=5.0, density=2300.0, specific_heat=850.0
)

#: Organic package substrate: build-up laminate with copper planes and
#: dense via fields under the die; 8 W/mK is an isotropic effective
#: value between the resin's ~0.5 and the copper planes' in-plane tens.
PACKAGE_SUBSTRATE = Material(
    "package_substrate", conductivity=8.0, density=2000.0, specific_heat=900.0
)

#: BGA solder ball array (solder plus air gaps, effective medium).
SOLDER_BALLS = Material(
    "solder_balls", conductivity=5.0, density=7500.0, specific_heat=220.0
)

#: Printed circuit board: FR4 with several copper planes and a thermal
#: via field under the socket; isotropic effective value.
PCB = Material("pcb", conductivity=3.0, density=1900.0, specific_heat=1100.0)


@dataclass(frozen=True)
class Fluid:
    """A coolant fluid for convective boundary layers.

    ``kinematic_viscosity`` is nu in m^2/s; the Prandtl number is derived
    as ``nu / alpha`` with thermal diffusivity ``alpha = k / (rho c_p)``.
    """

    name: str
    conductivity: float
    density: float
    specific_heat: float
    kinematic_viscosity: float

    def __post_init__(self) -> None:
        require_positive("conductivity", self.conductivity)
        require_positive("density", self.density)
        require_positive("specific_heat", self.specific_heat)
        require_positive("kinematic_viscosity", self.kinematic_viscosity)

    @property
    def volumetric_heat(self) -> float:
        """Volumetric heat capacity in J/(m^3 K)."""
        return self.density * self.specific_heat

    @property
    def thermal_diffusivity(self) -> float:
        """alpha = k / (rho c_p), in m^2/s."""
        return self.conductivity / self.volumetric_heat

    @property
    def prandtl(self) -> float:
        """Prandtl number Pr = nu / alpha (dimensionless)."""
        return self.kinematic_viscosity / self.thermal_diffusivity


#: IR-transparent mineral oil of the kind used in the Mesa-Martinez et al.
#: ISCA'07 setup the paper models.  Properties chosen within the published
#: range for light mineral oils so that a 10 m/s flow over a 20 mm die
#: yields Rconv close to 1.0 K/W, matching the paper's validation setup
#: (Section 3.2: "The equivalent convection thermal resistance is about
#: 1.0 K/W").  Pr ~ 250, laminar at these speeds and lengths.
MINERAL_OIL = Fluid(
    "mineral_oil",
    conductivity=0.13,
    density=850.0,
    specific_heat=1900.0,
    kinematic_viscosity=2.0e-5,
)

#: Air at ~45 C, used for the fan-driven heatsink convection.
AIR = Fluid(
    "air",
    conductivity=0.027,
    density=1.1,
    specific_heat=1005.0,
    kinematic_viscosity=1.7e-5,
)

#: Water, provided for completeness (forced water cooling appears in the
#: paper's cooling-mechanism taxonomy, Section 2.1).
WATER = Fluid(
    "water",
    conductivity=0.6,
    density=997.0,
    specific_heat=4180.0,
    kinematic_viscosity=8.9e-7,
)

#: Registry of named materials for file-driven configuration.
MATERIALS = {
    m.name: m
    for m in (
        SILICON,
        COPPER,
        THERMAL_INTERFACE,
        INTERCONNECT,
        C4_UNDERFILL,
        PACKAGE_SUBSTRATE,
        SOLDER_BALLS,
        PCB,
    )
}

#: Registry of named fluids.
FLUIDS = {f.name: f for f in (MINERAL_OIL, AIR, WATER)}
