"""Model-based thermal estimation from sparse sensors.

The paper closes its sensor discussion (Section 5.4) with: "We think a
proper way is to combine IR and sensor measurements and thermal
modeling to achieve a better thermal design."  This module is that
combination at runtime: a handful of on-die sensors cannot see the
whole map, but the thermal model knows how any power assignment maps
to temperatures, so the readings can be inverted into a per-block
power estimate and the *full* map reconstructed from it.

Estimator: regularized least squares in power space.

    minimize  || T_sensors(p) - readings ||^2 + lam * || p - p0 ||^2
    subject to p >= 0

where ``T_sensors(p)`` is linear (sensor-response matrix, one steady
solve per block, factorization shared) and ``p0`` is a prior power
map (e.g. the design-time estimate the paper's workflow would have).
The reconstruction inherits the model's physics, so it recovers hot
spots *between* sensors -- which nearest-sensor readings, by
construction, cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy.optimize import lsq_linear

from ..errors import ConfigurationError, SolverError
from ..solver.steady import steady_state
from .sensor import ThermalSensor


@dataclass
class MapEstimate:
    """Reconstructed thermal state from sparse sensor readings."""

    power: np.ndarray           # inferred per-block power (W)
    block_rise: np.ndarray      # reconstructed per-block rise (K)
    cell_rise: Optional[np.ndarray]  # full cell field (grid models)
    residual: float             # sensor-space fit residual (K, rms)

    @property
    def hottest_block(self) -> int:
        """Index of the reconstructed hottest block."""
        return int(np.argmax(self.block_rise))


class ModelBasedEstimator:
    """Reconstruct full thermal maps from k sensors plus the model.

    Parameters
    ----------
    model:
        The thermal model of the die in its package (grid or block).
    sensors:
        Sensor locations (grid models read their cells; block models
        read the block containing each sensor).
    regularization:
        Tikhonov weight ``lam`` pulling the power estimate toward the
        prior; raise it when sensors are few or noisy.
    """

    def __init__(
        self,
        model,
        sensors: Sequence[ThermalSensor],
        regularization: float = 0.05,
    ) -> None:
        if not sensors:
            raise ConfigurationError("need at least one sensor")
        if regularization < 0:
            raise ConfigurationError("regularization must be >= 0")
        self.model = model
        self.sensors = list(sensors)
        self.regularization = float(regularization)
        self._sensor_matrix, self._unit_rises = self._build_matrices()

    def _sensor_rise(self, state: np.ndarray) -> np.ndarray:
        model = self.model
        if hasattr(model, "mapping"):
            field = model.silicon_cell_rise(state)
            cells = [s.cell_index(model.mapping) for s in self.sensors]
            return field[cells]
        block_rise = model.block_rise(state)
        indices = []
        for sensor in self.sensors:
            block = model.floorplan.block_at(sensor.x, sensor.y)
            if block is None:
                raise ConfigurationError(
                    f"sensor at ({sensor.x}, {sensor.y}) is outside "
                    f"every block"
                )
            indices.append(model.floorplan.index_of(block.name))
        return block_rise[indices]

    def _build_matrices(self):
        model = self.model
        n_blocks = len(model.floorplan)
        sensor_rows = np.empty((len(self.sensors), n_blocks))
        unit_rises: List[np.ndarray] = []
        for j in range(n_blocks):
            unit = np.zeros(n_blocks)
            unit[j] = 1.0
            state = steady_state(model.network, model.node_power(unit))
            sensor_rows[:, j] = self._sensor_rise(state)
            unit_rises.append(state)
        return sensor_rows, unit_rises

    def estimate(
        self,
        readings: np.ndarray,
        prior_power: Optional[np.ndarray] = None,
    ) -> MapEstimate:
        """Invert sensor readings (temperature rises, K) into a map."""
        readings = np.asarray(readings, dtype=float)
        n_blocks = len(self.model.floorplan)
        if readings.shape != (len(self.sensors),):
            raise SolverError("one reading per sensor required")
        if prior_power is None:
            prior = np.zeros(n_blocks)
        else:
            prior = np.asarray(prior_power, dtype=float)
            if prior.shape != (n_blocks,):
                raise SolverError("prior_power has the wrong length")

        lam = self.regularization
        a = np.vstack([self._sensor_matrix, lam * np.eye(n_blocks)])
        b = np.concatenate([readings, lam * prior])
        solution = lsq_linear(a, b, bounds=(0.0, np.inf))
        power = solution.x

        state = np.zeros(self.model.n_nodes)
        for j, watts in enumerate(power):
            if watts:
                state = state + watts * self._unit_rises[j]
        block_rise = self.model.block_rise(state)
        cell_rise = (
            self.model.silicon_cell_rise(state)
            if hasattr(self.model, "mapping") else None
        )
        fitted = self._sensor_matrix @ power
        residual = float(np.sqrt(np.mean((fitted - readings) ** 2)))
        return MapEstimate(
            power=power, block_rise=block_rise, cell_rise=cell_rise,
            residual=residual,
        )

    def hotspot_error(
        self, true_state: np.ndarray, estimate: MapEstimate
    ) -> float:
        """True maximum rise minus reconstructed maximum rise (K)."""
        model = self.model
        if hasattr(model, "mapping") and estimate.cell_rise is not None:
            true_max = float(model.silicon_cell_rise(true_state).max())
            seen_max = float(estimate.cell_rise.max())
        else:
            true_max = float(model.block_rise(true_state).max())
            seen_max = float(estimate.block_rise.max())
        return true_max - seen_max
