"""IR-guided thermal sensor calibration.

Section 2.3 of the paper discusses using IR measurements "to guide the
thermal sensor placement and calibration" (Kursun & Cher).  The
workflow: run the chip under the IR bench, read the on-die sensors and
the camera simultaneously, and take the per-sensor discrepancy as the
sensor's systematic offset.

This module implements that workflow and exposes its pitfall, which
follows directly from the paper's Section 5.3 observation: the camera's
optical blur averages the neighborhood of the sensor's location, so on
the steep thermal maps the oil bench produces, the IR "reference"
under-reads near hot spots and the calibration inherits a bias that
grows with the local gradient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..floorplan.grid_map import GridMapping
from .sensor import ThermalSensor


@dataclass
class CalibrationResult:
    """Estimated offsets and the corrected sensors."""

    estimated_offsets: np.ndarray
    calibrated_sensors: List[ThermalSensor]
    residual_std: np.ndarray  # per-sensor frame-to-frame spread

    def offset_error(self, true_offsets: Sequence[float]) -> np.ndarray:
        """Estimated minus true offsets, per sensor (K)."""
        return self.estimated_offsets - np.asarray(true_offsets, float)


def calibrate_sensors(
    sensors: Sequence[ThermalSensor],
    sensor_readings: np.ndarray,
    ir_frames: np.ndarray,
    mapping: GridMapping,
) -> CalibrationResult:
    """Estimate sensor offsets against simultaneous IR frames.

    Parameters
    ----------
    sensors:
        The sensors as placed (their ``offset`` fields are treated as
        unknown and re-estimated).
    sensor_readings:
        Array (n_frames, n_sensors) of raw sensor readings taken at
        the same instants as the IR frames.
    ir_frames:
        Array (n_frames, n_cells) of camera-reported temperature maps.
    mapping:
        Grid geometry relating sensor positions to camera pixels.

    Returns
    -------
    CalibrationResult with per-sensor offset estimates (mean
    discrepancy over frames -- averaging beats the camera's NETD
    noise) and sensors whose ``offset`` is corrected so their readings
    match the IR reference.
    """
    sensor_readings = np.asarray(sensor_readings, dtype=float)
    ir_frames = np.asarray(ir_frames, dtype=float)
    if sensor_readings.ndim != 2 or ir_frames.ndim != 2:
        raise ConfigurationError("readings and frames must be 2-D")
    if sensor_readings.shape[0] != ir_frames.shape[0]:
        raise ConfigurationError("frame counts disagree")
    if sensor_readings.shape[1] != len(sensors):
        raise ConfigurationError("one reading column per sensor required")
    if ir_frames.shape[1] != mapping.n_cells:
        raise ConfigurationError("frames do not match the grid")

    cells = [s.cell_index(mapping) for s in sensors]
    reference = ir_frames[:, cells]              # (n_frames, n_sensors)
    discrepancy = sensor_readings - reference
    offsets = discrepancy.mean(axis=0)
    spread = discrepancy.std(axis=0)

    calibrated = [
        ThermalSensor(
            x=s.x, y=s.y,
            offset=s.offset - float(offsets[i]),
            noise_sigma=s.noise_sigma,
            time_constant=s.time_constant,
            name=s.name,
        )
        for i, s in enumerate(sensors)
    ]
    return CalibrationResult(
        estimated_offsets=offsets,
        calibrated_sensors=calibrated,
        residual_std=spread,
    )


def calibration_bias_bound(
    mapping: GridMapping,
    cell_field: np.ndarray,
    sensor: ThermalSensor,
    blur_sigma: float,
) -> float:
    """Worst-case calibration bias from the camera's optical blur (K).

    A Gaussian PSF of width ``blur_sigma`` reads a weighted average of
    the sensor's neighborhood; the first-order bias is bounded by the
    blur's second moment times the local curvature, estimated here
    directly by blurring the map and differencing at the sensor cell.
    Steeper maps (OIL-SILICON) give larger bounds -- quantifying why
    calibrating against an oil-bench IR image is riskier near hot
    spots.
    """
    from ..ircamera import _gaussian_blur_2d

    if blur_sigma <= 0:
        return 0.0
    grid = mapping.as_grid(np.asarray(cell_field, dtype=float))
    blurred = _gaussian_blur_2d(
        grid, blur_sigma / mapping.dx, blur_sigma / mapping.dy
    )
    cell = sensor.cell_index(mapping)
    return float(abs(blurred.ravel()[cell]
                     - np.asarray(cell_field)[cell]))
