"""On-die thermal sensor model.

A sensor reads the die's active-layer temperature at a fixed point,
with optional calibration offset, Gaussian noise, and a first-order
response lag (real diode/BJT sensors are not instantaneous; the paper's
Section 5.4 lists "the speed of the sensor might limit the sampling
rate" among the practical difficulties).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..floorplan.grid_map import GridMapping
from ..units import require_non_negative


@dataclass(frozen=True)
class ThermalSensor:
    """One point temperature sensor on the die.

    Parameters
    ----------
    x, y:
        Sensor location on the die, meters.
    offset:
        Systematic calibration offset added to every reading, K.
    noise_sigma:
        Standard deviation of per-reading Gaussian noise, K.
    time_constant:
        First-order response lag, seconds (0 = instantaneous).
    name:
        Optional label (e.g. the block the sensor was placed for).
    """

    x: float
    y: float
    offset: float = 0.0
    noise_sigma: float = 0.0
    time_constant: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        require_non_negative("noise_sigma", self.noise_sigma)
        require_non_negative("time_constant", self.time_constant)

    def cell_index(self, mapping: GridMapping) -> int:
        """Grid cell the sensor sits in."""
        return mapping.cell_index(self.x, self.y)

    def read_field(
        self, field: np.ndarray, mapping: GridMapping,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """One instantaneous reading from a cell temperature field."""
        value = float(np.asarray(field)[self.cell_index(mapping)]) + self.offset
        if self.noise_sigma > 0:
            rng = rng or np.random.default_rng()
            value += float(rng.normal(0.0, self.noise_sigma))
        return value

    def read_series(
        self,
        times: np.ndarray,
        fields: np.ndarray,
        mapping: GridMapping,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Read a full time series, applying the first-order lag."""
        times = np.asarray(times, dtype=float)
        cell = self.cell_index(mapping)
        raw = np.asarray(fields, dtype=float)[:, cell] + self.offset
        if self.time_constant > 0 and times.size > 1:
            filtered = np.empty_like(raw)
            filtered[0] = raw[0]
            for i in range(1, raw.size):
                dt = times[i] - times[i - 1]
                alpha = 1.0 - np.exp(-dt / self.time_constant)
                filtered[i] = filtered[i - 1] + alpha * (raw[i] - filtered[i - 1])
            raw = filtered
        if self.noise_sigma > 0:
            rng = rng or np.random.default_rng()
            raw = raw + rng.normal(0.0, self.noise_sigma, size=raw.shape)
        return raw


class SensorArray:
    """A set of sensors read together (deterministic given a seed)."""

    def __init__(self, sensors: Sequence[ThermalSensor], seed: int = 0) -> None:
        if not sensors:
            raise ConfigurationError("a sensor array needs at least one sensor")
        self.sensors: Tuple[ThermalSensor, ...] = tuple(sensors)
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self.sensors)

    def read_field(self, field: np.ndarray, mapping: GridMapping) -> np.ndarray:
        """One reading per sensor from a cell field."""
        return np.array([
            s.read_field(field, mapping, rng=self._rng) for s in self.sensors
        ])

    def max_reading(self, field: np.ndarray, mapping: GridMapping) -> float:
        """The hottest reported temperature (what DTM triggers on)."""
        return float(self.read_field(field, mapping).max())

    def hotspot_error(self, field: np.ndarray, mapping: GridMapping) -> float:
        """True field maximum minus the hottest sensor reading, K.

        Positive values mean the array *underestimates* the real hot
        spot -- the dangerous direction (missed thermal emergencies,
        paper Section 5.3-5.4).
        """
        return float(np.asarray(field).max() - self.max_reading(field, mapping))


def series_error(readings: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Pointwise reading error along a time series."""
    return np.asarray(readings, dtype=float) - np.asarray(truth, dtype=float)
