"""On-die thermal sensors: models, placement, and error analysis."""

from .sensor import ThermalSensor, SensorArray
from .placement import (
    place_at_block,
    place_at_hotspot,
    placement_error,
    error_vs_offset,
    sensors_needed_for_error_bound,
    greedy_coverage_placement,
    multi_map_greedy_placement,
    evaluate_placement,
)
from .calibration import (
    CalibrationResult,
    calibrate_sensors,
    calibration_bias_bound,
)
from .estimation import MapEstimate, ModelBasedEstimator

__all__ = [
    "ThermalSensor",
    "SensorArray",
    "place_at_block",
    "place_at_hotspot",
    "placement_error",
    "error_vs_offset",
    "sensors_needed_for_error_bound",
    "greedy_coverage_placement",
    "multi_map_greedy_placement",
    "evaluate_placement",
    "CalibrationResult",
    "calibrate_sensors",
    "calibration_bias_bound",
    "MapEstimate",
    "ModelBasedEstimator",
]
