"""Sensor placement strategies and placement-error analysis.

Section 5.3 of the paper argues that the steep gradients of OIL-SILICON
amplify the penalty of a misplaced sensor, so a die characterized under
oil appears to need more sensors (or larger guard margins) than the
same die under AIR-SINK; Section 5.4 adds that placements derived from
an oil-cooled measurement can sit at the *wrong block* entirely once
the chip runs under its real package.  These utilities quantify both
effects.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..floorplan.block import Floorplan
from ..floorplan.grid_map import GridMapping
from .sensor import ThermalSensor


def place_at_block(floorplan: Floorplan, block: str) -> ThermalSensor:
    """A sensor at the named block's center."""
    x, y = floorplan[block].center
    return ThermalSensor(x=x, y=y, name=block)


def place_at_hotspot(
    mapping: GridMapping, cell_field: np.ndarray, name: str = "hotspot"
) -> ThermalSensor:
    """A sensor at the hottest cell of a reference temperature map.

    This is the "place the sensor where the IR measurement says the hot
    spot is" strategy whose failure mode Section 5.4 describes.
    """
    cell_field = np.asarray(cell_field, dtype=float)
    hottest = int(np.argmax(cell_field))
    xs, ys = mapping.cell_centers()
    return ThermalSensor(x=float(xs[hottest]), y=float(ys[hottest]), name=name)


def placement_error(
    mapping: GridMapping, cell_field: np.ndarray, sensor: ThermalSensor
) -> float:
    """True map maximum minus the sensor's reading, K (>= 0 is a miss)."""
    cell_field = np.asarray(cell_field, dtype=float)
    return float(cell_field.max() - cell_field[sensor.cell_index(mapping)])


def error_vs_offset(
    mapping: GridMapping,
    cell_field: np.ndarray,
    offsets: np.ndarray,
) -> np.ndarray:
    """Mean sensor error as a function of displacement from the hot spot.

    For each offset distance d, averages the temperature deficit over
    the cells at (approximately) distance d from the hottest cell.
    Steeper maps (OIL-SILICON) produce steeper error curves -- the
    quantitative core of the Section 5.3 argument.
    """
    cell_field = np.asarray(cell_field, dtype=float)
    offsets = np.asarray(offsets, dtype=float)
    hottest = int(np.argmax(cell_field))
    xs, ys = mapping.cell_centers()
    distance = np.hypot(xs - xs[hottest], ys - ys[hottest])
    t_max = cell_field.max()
    bin_half_width = max(mapping.dx, mapping.dy)
    errors = np.empty_like(offsets)
    for i, d in enumerate(offsets):
        ring = np.abs(distance - d) <= bin_half_width
        if not np.any(ring):
            errors[i] = np.nan
            continue
        errors[i] = float(t_max - cell_field[ring].mean())
    return errors


def greedy_coverage_placement(
    mapping: GridMapping,
    cell_field: np.ndarray,
    n_sensors: int,
) -> List[ThermalSensor]:
    """Greedy max-coverage placement against one reference map.

    Repeatedly places a sensor at the cell whose temperature is least
    covered: the cell maximizing (its own temperature minus the best
    reading any existing sensor would attribute to it, taking the
    sensor's own cell temperature as its estimate).  The first sensor
    always lands on the hot spot.
    """
    if n_sensors < 1:
        raise ConfigurationError("need n_sensors >= 1")
    cell_field = np.asarray(cell_field, dtype=float)
    xs, ys = mapping.cell_centers()
    chosen: List[int] = []
    sensors: List[ThermalSensor] = []
    for s in range(n_sensors):
        if not chosen:
            candidate = int(np.argmax(cell_field))
        else:
            best_estimate = np.max(cell_field[chosen])
            deficit = cell_field - best_estimate
            candidate = int(np.argmax(deficit))
            if deficit[candidate] <= 0:
                # Everything already covered; place at the next-hottest
                # uncovered cell for redundancy.
                remaining = np.setdiff1d(
                    np.argsort(cell_field)[::-1], chosen, assume_unique=False
                )
                candidate = int(remaining[0])
        chosen.append(candidate)
        sensors.append(
            ThermalSensor(
                x=float(xs[candidate]), y=float(ys[candidate]),
                name=f"sensor{s}",
            )
        )
    return sensors


def sensors_needed_for_error_bound(
    mapping: GridMapping,
    cell_field: np.ndarray,
    error_bound: float,
    max_sensors: int = 64,
    spacing_grid: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 8),
    phase_offsets: int = 4,
) -> int:
    """Smallest regular sensor grid that bounds the hot-spot error.

    Tries k x k regular sensor grids in increasing k and returns the
    sensor count of the first one whose *worst-case* hot-spot
    underestimate -- over ``phase_offsets^2`` lateral shifts of the
    whole grid -- is at most ``error_bound`` K.  Evaluating the worst
    grid phase removes the alignment luck of any single placement, so
    the count reflects the map's gradients, which is the paper's
    Section 5.3 argument ("more on-chip temperature sensors are
    needed").  Raises ConfigurationError if no tried grid suffices.
    """
    if error_bound <= 0:
        raise ConfigurationError("error_bound must be positive")
    if phase_offsets < 1:
        raise ConfigurationError("phase_offsets must be >= 1")
    cell_field = np.asarray(cell_field, dtype=float)
    t_max = cell_field.max()
    width = mapping.floorplan.die_width
    height = mapping.floorplan.die_height
    for k in spacing_grid:
        if k * k > max_sensors:
            break
        pitch_x = width / k
        pitch_y = height / k
        worst_error = 0.0
        for px in range(phase_offsets):
            for py in range(phase_offsets):
                shift_x = (px + 0.5) / phase_offsets * pitch_x
                shift_y = (py + 0.5) / phase_offsets * pitch_y
                readings = []
                for i in range(k):
                    for j in range(k):
                        x = (i * pitch_x + shift_x) % width
                        y = (j * pitch_y + shift_y) % height
                        cell = mapping.cell_index(float(x), float(y))
                        readings.append(cell_field[cell])
                worst_error = max(worst_error, t_max - max(readings))
        if worst_error <= error_bound:
            return k * k
    raise ConfigurationError(
        f"no tried sensor grid meets the {error_bound} K bound"
    )


def evaluate_placement(
    mapping: GridMapping,
    cell_fields: np.ndarray,
    sensors: List[ThermalSensor],
) -> float:
    """Worst-case hot-spot underestimate of a placement over many maps.

    ``cell_fields`` is (n_maps, n_cells): e.g. the steady maps of
    several workloads, or of several oil flow directions (the
    Section 5.4 hazard).  Returns max over maps of (map max - best
    sensor reading), in the maps' units.
    """
    cell_fields = np.atleast_2d(np.asarray(cell_fields, dtype=float))
    cells = [s.cell_index(mapping) for s in sensors]
    if not cells:
        raise ConfigurationError("placement needs at least one sensor")
    readings = cell_fields[:, cells].max(axis=1)
    return float(np.max(cell_fields.max(axis=1) - readings))


def multi_map_greedy_placement(
    mapping: GridMapping,
    cell_fields: np.ndarray,
    n_sensors: int,
) -> List[ThermalSensor]:
    """Greedy sensor placement robust across multiple thermal maps.

    The paper's Section 5.4 lesson is that a placement tuned on one
    measurement condition (one package, one flow direction) misses hot
    spots under another.  This placer greedily adds the sensor that
    most reduces the *worst-case* hot-spot error over all supplied
    maps -- the systematic-allocation approach of the sensor-placement
    literature the paper cites (Lee et al., Mukherjee & Memik).
    """
    if n_sensors < 1:
        raise ConfigurationError("need n_sensors >= 1")
    cell_fields = np.atleast_2d(np.asarray(cell_fields, dtype=float))
    n_maps, n_cells = cell_fields.shape
    if n_cells != mapping.n_cells:
        raise ConfigurationError("cell_fields do not match the grid")
    xs, ys = mapping.cell_centers()
    map_maxima = cell_fields.max(axis=1)
    chosen: List[int] = []
    best_readings = np.full(n_maps, -np.inf)
    sensors: List[ThermalSensor] = []
    for s in range(n_sensors):
        # Error per candidate cell if added: per map, the reading
        # becomes max(best_so_far, field[map, cell]).  Selection
        # minimizes the *total* error across maps: unlike minimizing
        # the worst map directly (which stalls on compromise cells --
        # one sensor can't fix every map, so every candidate leaves the
        # same worst case), the total decomposes per map and steers
        # each new sensor onto the hottest still-uncovered spot.
        candidate_readings = np.maximum(
            best_readings[:, None], cell_fields
        )  # (n_maps, n_cells)
        total_error = (map_maxima[:, None] - candidate_readings).sum(axis=0)
        total_error[chosen] = np.inf  # no duplicate placements
        candidate = int(np.argmin(total_error))
        chosen.append(candidate)
        best_readings = np.maximum(best_readings, cell_fields[:, candidate])
        sensors.append(
            ThermalSensor(
                x=float(xs[candidate]), y=float(ys[candidate]),
                name=f"sensor{s}",
            )
        )
    return sensors


def hotspot_displacement(
    mapping: GridMapping,
    field_a: np.ndarray,
    field_b: np.ndarray,
) -> float:
    """Distance (m) between the hot spots of two maps.

    Quantifies the Section 5.4 hazard: how far the OIL-SILICON hot spot
    sits from the AIR-SINK hot spot for the same workload.
    """
    xs, ys = mapping.cell_centers()
    a = int(np.argmax(np.asarray(field_a)))
    b = int(np.argmax(np.asarray(field_b)))
    return float(np.hypot(xs[a] - xs[b], ys[a] - ys[b]))
