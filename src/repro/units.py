"""Physical constants and unit helpers.

All internal computation is in SI units: meters, kilograms, seconds,
Watts, and Kelvin.  The paper reports most temperatures in degrees
Celsius, so conversion helpers are provided and used at the reporting
boundary only.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

#: Machine-readable dimension table consumed by the static analyzer
#: (:mod:`repro.analysis.static`).  Maps the *symbols this module
#: exports* — constants and constructor functions — to the dimension of
#: the value they denote (for constants) or return (for functions).
#: Dimension strings use SI unit syntax: products with ``*``, quotients
#: with ``/``, powers with ``^``; ``1`` denotes a dimensionless value.
#: The analyzer parses these into base-unit exponent vectors, so derived
#: units (W, J, Pa, ...) and base-unit spellings of the same physical
#: dimension compare equal.
DIMENSIONS = {
    # constants
    "ZERO_CELSIUS_IN_KELVIN": "K",
    "DEFAULT_AMBIENT_KELVIN": "K",
    # constructors: the dimension of the *return value*.  ``degC`` is
    # the analyzer's pseudo-dimension for the Celsius scale — Kelvin
    # and Celsius differ by an offset, so mixing them is flagged like
    # any other dimension mismatch.
    "celsius_to_kelvin": "K",
    "kelvin_to_celsius": "degC",
    "mm": "m",
    "um": "m",
}

#: Dimensions of well-known attribute names used across the package
#: (material properties, network quantities).  The analyzer uses these
#: to infer the dimension of ``obj.<attr>`` expressions.
ATTRIBUTE_DIMENSIONS = {
    # repro.materials.Material / Fluid properties
    "conductivity": "W/(m*K)",
    "density": "kg/m^3",
    "specific_heat": "J/(kg*K)",
    "volumetric_heat": "J/(m^3*K)",
    "kinematic_viscosity": "m^2/s",
    "thermal_diffusivity": "m^2/s",
    "prandtl": "1",
    # thermal RC network quantities
    "capacitance": "J/K",
    "conductance": "W/K",
    "ambient_conductance": "W/K",
    # package / convection quantities
    "convection_resistance": "W^-1*K",
    "heat_transfer_coefficient": "W/(m^2*K)",
    "ambient": "K",
    "velocity": "m/s",
    "die_width": "m",
    "die_height": "m",
    "area": "m^2",
}

#: Dimensions of well-known *parameter* names: the interprocedural
#: analyzer (:mod:`repro.analysis.static.signatures`) seeds function
#: dimension signatures from these when a parameter carries no explicit
#: :func:`quantity` annotation.  Only names whose meaning is unambiguous
#: across this codebase belong here — a generic name (``x``, ``value``,
#: ``scale``) would cause false positives.
PARAMETER_DIMENSIONS = {
    "temp_c": "degC",
    "ambient_c": "degC",
    "temp_k": "K",
    "ambient_k": "K",
    "ambient": "K",
    "velocity": "m/s",
    "area": "m^2",
    "conductivity": "W/(m*K)",
    "specific_heat": "J/(kg*K)",
    "density": "kg/m^3",
    "kinematic_viscosity": "m^2/s",
    "heat_transfer_coefficient": "W/(m^2*K)",
    "convection_resistance": "K/W",
    "target_resistance": "K/W",
    "total_resistance": "K/W",
    "silicon_resistance": "K/W",
    "die_width": "m",
    "die_height": "m",
    "plate_length": "m",
    "length": "m",
    "thickness": "m",
    "capacitance": "J/K",
    "silicon_cap": "J/K",
    "sink_cap": "J/K",
    "oil_cap": "J/K",
    "total_capacitance": "J/K",
    "conductance": "W/K",
    "power": "W",
}

#: Symbolic shapes of well-known *parameter* names: the array-contract
#: pass (:mod:`repro.analysis.static.arrays`) seeds function shape
#: signatures from these when a parameter carries no explicit
#: :func:`array_shape` annotation.  Values are tuples of dimension
#: tokens; the same token always denotes the same extent project-wide,
#: so only names with one unambiguous layout belong here.
PARAMETER_SHAPES = {
    "node_power": ("n_nodes",),
    "cell_power": ("n_cells",),
    "node_rise": ("n_nodes",),
    "power_modes": ("2*ny", "nx+1"),
}

#: Integer parameter/attribute names that denote array extents.  When
#: one of these appears in a shape expression (``np.zeros((n_nodes,
#: K))``, ``field.reshape(ny, nx)``, ``stack.nx``), the analyzer reads
#: it as the symbolic dimension of that name, unifying extents across
#: call edges the same way :data:`PARAMETER_DIMENSIONS` unifies units.
DIMENSION_PARAMETERS = (
    "n_nodes", "n_cells", "n_layers", "n_blocks", "n_modes",
    "n_scenarios", "n_times", "n_records", "n_steps", "n_injection",
    "K", "nx", "ny", "nz",
)

#: Prefix that :func:`quantity` attaches to its unit string inside
#: ``typing.Annotated`` metadata, so annotations survive as plain
#: strings at runtime while remaining recognizable to the analyzer.
QUANTITY_PREFIX = "unit:"

#: Prefixes for the array-contract annotations (:func:`array_shape`,
#: :func:`array_dtype`, :func:`cache_shared`).
SHAPE_PREFIX = "shape:"
DTYPE_PREFIX = "dtype:"
PROVENANCE_PREFIX = "prov:"

#: Prefixes for the concurrency-contract annotations (:func:`guarded_by`,
#: :func:`effects`, :func:`hot_path`).
GUARDED_PREFIX = "guarded:"
EFFECT_PREFIX = "effect:"

#: Span-name prefixes that mark *hot paths* for the blocking-in-hot-path
#: rule (R14): any function opening an ``obs.span``/``obs.trace`` whose
#: name starts with one of these is a latency-sensitive root, and
#: nothing reachable from it may sleep, flock, or block on a queue.
HOT_SPAN_PREFIXES = ("solver.", "rcmodel.")

#: Call-name suffixes the effect extractor treats as blocking
#: operations, mapped to the effect kind they produce.  Matched against
#: the last component of the dotted callee (``time.sleep`` → ``sleep``,
#: ``fcntl.flock`` → ``flock``); ``put`` only counts when the receiver
#: looks like a queue (name contains ``queue``/``sink``) and the call is
#: not explicitly non-blocking.
BLOCKING_CALLS = {
    "sleep": "blocks-on-io",
    "flock": "blocks-on-io",
    "put": "blocks-on-io",
}


def quantity(unit: str) -> str:
    """Declare the physical unit of an annotated value.

    Used inside ``typing.Annotated`` to give a parameter or return
    value a machine-checkable dimension::

        def convection_resistance(
            area: Annotated[float, quantity("m^2")], ...
        ) -> Annotated[float, quantity("K/W")]: ...

    At runtime this is just a tagged string (``Annotated[float, ...]``
    behaves as ``float``); the static analyzer parses the unit with
    :mod:`repro.analysis.static.dimensions` and verifies both the
    function body and every call site against it.
    """
    return f"{QUANTITY_PREFIX}{unit}"


def array_shape(*dims: Union[str, int]) -> str:
    """Declare the symbolic shape of an annotated numpy array.

    Used inside ``typing.Annotated`` to give an array parameter or
    return value a machine-checkable layout contract::

        def advance(
            state: Annotated[np.ndarray, array_shape("n_nodes", "K")],
        ) -> Annotated[np.ndarray, array_shape("n_nodes", "K")]: ...

    Dimension tokens are rigid symbols: ``"n_nodes"`` always means the
    node-count extent, project-wide, so passing a ``(K, n_nodes)``
    array where ``(n_nodes, K)`` is declared is flagged even when the
    two extents happen to be equal at runtime.  Tokens may be integers
    or arithmetic over tokens (``"2*ny"``, ``"nx+1"``, ``"nx//2+1"``).
    At runtime this is just a tagged string; the static analyzer
    (:mod:`repro.analysis.static.arrays`) does the checking.
    """
    return SHAPE_PREFIX + ",".join(str(d).replace(" ", "") for d in dims)


def array_dtype(name: str) -> str:
    """Declare the dtype of an annotated numpy array.

    Canonical names: ``"float64"``, ``"float32"``, ``"complex"``,
    ``"int"``, ``"bool"``.  The analyzer's dtype-flow rule flags
    complex values leaking past a declared-real boundary and silent
    float32 downcasts into declared-float64 state.
    """
    return f"{DTYPE_PREFIX}{name}"


def cache_shared() -> str:
    """Declare that a returned array aliases process-wide cache storage.

    Callers must :meth:`~numpy.ndarray.copy` before mutating — an
    in-place op on the shared array would corrupt every later cache
    hit.  The analyzer's cache-alias-mutation rule propagates this
    provenance through assignments and wrapper returns.
    """
    return f"{PROVENANCE_PREFIX}cache-shared"


def guarded_by(*locks: str) -> str:
    """Declare that an attribute is protected by the named lock(s).

    Used inside ``typing.Annotated`` on a class-body attribute
    declaration to state its concurrency contract::

        class EventBuffer:
            _events: Annotated[List[Event], guarded_by("_lock")]

    At runtime this is just a tagged string; the static analyzer's
    lock-discipline rule (R12) verifies, whole-program, that every
    mutation of the attribute happens while at least one of the named
    locks is held (lexically via ``with self._lock:`` or via a caller
    that already holds it).  Plain reads are deliberately exempt — the
    codebase uses intentional lock-free fast reads (``Counter.value``).
    """
    return GUARDED_PREFIX + ",".join(locks)


def effects(*kinds: str) -> str:
    """Declare a function's intentional concurrency effects.

    Used inside ``typing.Annotated`` on a *return* annotation to
    acknowledge effects the analyzer would otherwise flag::

        def job_telemetry(...) -> Annotated[
            Tuple[...], effects("spawns-thread")
        ]: ...

    Known kinds: ``"blocks-on-io"`` (sleep / flock / blocking queue
    put), ``"spawns-thread"`` (thread or Manager construction).  A
    declared effect silences R13/R14 for matching sites inside the
    function body — it is a reviewed contract, not a suppression.
    """
    return EFFECT_PREFIX + ",".join(kinds)


def hot_path() -> str:
    """Declare a function as a latency-sensitive hot-path root (R14).

    Equivalent to opening a :data:`HOT_SPAN_PREFIXES` span: nothing
    reachable from the function may sleep, flock, or block on a queue.
    Use on solver entry points and would-be async handlers that carry
    no span of their own.
    """
    return f"{EFFECT_PREFIX}hot-path"


def signature_tables() -> dict:
    """The machine-readable dimension tables, as one mapping.

    Export helper for the static analyzer: bundles every table that
    contributes to dimension- and array-signature inference, so the
    analyzer's cache can fingerprint them (edits here must invalidate
    cached per-file analysis results).
    """
    return {
        "dimensions": dict(DIMENSIONS),
        "attributes": dict(ATTRIBUTE_DIMENSIONS),
        "parameters": dict(PARAMETER_DIMENSIONS),
        "shapes": {name: list(dims) for name, dims in PARAMETER_SHAPES.items()},
        "dimension_parameters": list(DIMENSION_PARAMETERS),
        "concurrency": {
            "hot_span_prefixes": list(HOT_SPAN_PREFIXES),
            "blocking_calls": dict(BLOCKING_CALLS),
        },
    }

#: Offset between the Kelvin and Celsius scales.
ZERO_CELSIUS_IN_KELVIN = 273.15

#: Ambient temperature HotSpot uses by default (45 C), also the ambient
#: the paper uses for the Fig. 12 experiments.
DEFAULT_AMBIENT_KELVIN = 45.0 + ZERO_CELSIUS_IN_KELVIN


def celsius_to_kelvin(temp_c: ArrayLike) -> ArrayLike:
    """Convert a temperature (scalar or array) from Celsius to Kelvin."""
    if isinstance(temp_c, np.ndarray):
        return np.asarray(temp_c, dtype=float) + ZERO_CELSIUS_IN_KELVIN
    return float(temp_c) + ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(temp_k: ArrayLike) -> ArrayLike:
    """Convert a temperature (scalar or array) from Kelvin to Celsius."""
    if isinstance(temp_k, np.ndarray):
        return np.asarray(temp_k, dtype=float) - ZERO_CELSIUS_IN_KELVIN
    return float(temp_k) - ZERO_CELSIUS_IN_KELVIN


def mm(value: float) -> float:
    """Express a length given in millimeters in meters."""
    return value * 1e-3


def um(value: float) -> float:
    """Express a length given in micrometers in meters."""
    return value * 1e-6


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, strictly positive number.

    Returns the value so it can be used inline in constructors.  Raises
    :class:`ValueError` otherwise; these guards protect the thermal model
    from degenerate geometry that would produce NaNs deep inside sparse
    solves where the cause is hard to diagnose.
    """
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, non-negative number."""
    value = float(value)
    if not math.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value
