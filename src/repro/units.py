"""Physical constants and unit helpers.

All internal computation is in SI units: meters, kilograms, seconds,
Watts, and Kelvin.  The paper reports most temperatures in degrees
Celsius, so conversion helpers are provided and used at the reporting
boundary only.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

#: Offset between the Kelvin and Celsius scales.
ZERO_CELSIUS_IN_KELVIN = 273.15

#: Ambient temperature HotSpot uses by default (45 C), also the ambient
#: the paper uses for the Fig. 12 experiments.
DEFAULT_AMBIENT_KELVIN = 45.0 + ZERO_CELSIUS_IN_KELVIN


def celsius_to_kelvin(temp_c: ArrayLike) -> ArrayLike:
    """Convert a temperature (scalar or array) from Celsius to Kelvin."""
    if isinstance(temp_c, np.ndarray):
        return np.asarray(temp_c, dtype=float) + ZERO_CELSIUS_IN_KELVIN
    return float(temp_c) + ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(temp_k: ArrayLike) -> ArrayLike:
    """Convert a temperature (scalar or array) from Kelvin to Celsius."""
    if isinstance(temp_k, np.ndarray):
        return np.asarray(temp_k, dtype=float) - ZERO_CELSIUS_IN_KELVIN
    return float(temp_k) - ZERO_CELSIUS_IN_KELVIN


def mm(value: float) -> float:
    """Express a length given in millimeters in meters."""
    return value * 1e-3


def um(value: float) -> float:
    """Express a length given in micrometers in meters."""
    return value * 1e-6


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, strictly positive number.

    Returns the value so it can be used inline in constructors.  Raises
    :class:`ValueError` otherwise; these guards protect the thermal model
    from degenerate geometry that would produce NaNs deep inside sparse
    solves where the cause is hard to diagnose.
    """
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, non-negative number."""
    value = float(value)
    if not math.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value
