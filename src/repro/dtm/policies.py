"""Dynamic thermal management policies.

A DTM policy, when engaged, scales the power of (a subset of) blocks
and costs some performance.  The three classics the DTM literature the
paper cites (Brooks & Martonosi, Skadron et al.) studies:

* fetch throttling -- reduce the front-end duty cycle; dynamic power of
  the affected blocks scales roughly linearly with the duty cycle, and
  so does performance;
* dynamic voltage/frequency scaling (DVFS) -- dynamic power scales as
  ``f V^2 ~ s^3`` for a frequency scale ``s`` (voltage tracking
  frequency), performance scales as ``s``;
* clock gating -- stop the clock of the affected blocks entirely for a
  duty fraction; power of gated blocks scales with the duty cycle and
  performance degrades with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..floorplan.block import Floorplan


@dataclass(frozen=True)
class DTMPolicy:
    """Base policy: uniform power scaling of target blocks when engaged.

    ``power_factor`` multiplies the power of each targeted block while
    the policy is engaged; ``performance_factor`` is the fraction of
    nominal performance retained while engaged.  ``targets`` of None
    means the whole chip.
    """

    power_factor: float
    performance_factor: float
    targets: Optional[FrozenSet[str]] = None
    name: str = "dtm"

    def __post_init__(self) -> None:
        if not 0.0 <= self.power_factor <= 1.0:
            raise ConfigurationError("power_factor must lie in [0, 1]")
        if not 0.0 <= self.performance_factor <= 1.0:
            raise ConfigurationError("performance_factor must lie in [0, 1]")

    def power_scale_vector(self, floorplan: Floorplan) -> np.ndarray:
        """Per-block power multiplier while engaged (floorplan order)."""
        scale = np.ones(len(floorplan))
        if self.targets is None:
            scale[:] = self.power_factor
            return scale
        unknown = self.targets - set(floorplan.names)
        if unknown:
            raise ConfigurationError(
                f"policy targets unknown blocks: {sorted(unknown)}"
            )
        for name in self.targets:
            scale[floorplan.index_of(name)] = self.power_factor
        return scale


def FetchThrottle(
    duty: float, targets: Optional[Sequence[str]] = None
) -> DTMPolicy:
    """Fetch throttling at the given duty cycle (power and perf ~ duty)."""
    return DTMPolicy(
        power_factor=duty,
        performance_factor=duty,
        targets=frozenset(targets) if targets is not None else None,
        name=f"fetch_throttle({duty:g})",
    )


def DVFS(frequency_scale: float) -> DTMPolicy:
    """Chip-wide DVFS: power ~ s^3, performance ~ s."""
    if not 0.0 < frequency_scale <= 1.0:
        raise ConfigurationError("frequency_scale must lie in (0, 1]")
    return DTMPolicy(
        power_factor=frequency_scale ** 3,
        performance_factor=frequency_scale,
        targets=None,
        name=f"dvfs({frequency_scale:g})",
    )


def ClockGating(
    duty: float, targets: Optional[Sequence[str]] = None
) -> DTMPolicy:
    """Clock gating of target blocks at the given duty cycle."""
    return DTMPolicy(
        power_factor=duty,
        performance_factor=duty,
        targets=frozenset(targets) if targets is not None else None,
        name=f"clock_gating({duty:g})",
    )
