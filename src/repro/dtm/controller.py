"""Closed-loop DTM simulation over the thermal model.

The controller walks a power trace through the transient solver.  At
every sensor sampling instant it reads the hottest sensor; readings at
or above the trigger threshold engage the policy for a fixed
engagement duration (re-triggering extends the engagement).  While
engaged, block powers are scaled by the policy and performance
accumulates at the policy's reduced rate.

This is the machinery behind the paper's Section 5.1: for the same
workload and threshold, the package with the slower transient response
(OIL-SILICON) stays hot longer after a trigger and therefore needs
longer engagement durations, costing more performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..power.trace import PowerTrace
from ..rcmodel.grid import ThermalGridModel
from ..sensors.sensor import SensorArray
from ..solver.transient import TrapezoidalStepper
from .policies import DTMPolicy


@dataclass
class DTMRun:
    """Results of one closed-loop DTM simulation.

    Temperatures are absolute Kelvin.  ``engaged`` flags each sample
    interval; ``performance`` is the fraction of nominal work completed
    over the run (1.0 = no DTM penalty).
    """

    times: np.ndarray
    sensor_max: np.ndarray
    true_max: np.ndarray
    block_temps: np.ndarray
    engaged: np.ndarray
    performance: float
    n_engagements: int

    @property
    def engaged_fraction(self) -> float:
        """Fraction of intervals spent with DTM engaged."""
        return float(np.mean(self.engaged))

    @property
    def peak_temperature(self) -> float:
        """Hottest true die temperature over the run, K."""
        return float(self.true_max.max())


class DTMController:
    """Sensor-driven DTM over a thermal model.

    Parameters
    ----------
    model:
        The thermal model of the die in its package.
    sensors:
        The on-die sensor array the controller can actually see.
    policy:
        The response engaged on a trigger.
    threshold:
        Trigger temperature, Kelvin (absolute).
    engagement_duration:
        How long each trigger engages the policy, seconds.
    sampling_interval:
        Sensor sampling period, seconds; must be a multiple of the
        power trace's dt (the controller acts between trace samples).
    """

    def __init__(
        self,
        model: ThermalGridModel,
        sensors: SensorArray,
        policy: DTMPolicy,
        threshold: float,
        engagement_duration: float,
        sampling_interval: Optional[float] = None,
    ) -> None:
        if threshold <= model.config.ambient:
            raise ConfigurationError("threshold must exceed ambient")
        if engagement_duration <= 0:
            raise ConfigurationError("engagement_duration must be positive")
        self.model = model
        self.sensors = sensors
        self.policy = policy
        self.threshold = float(threshold)
        self.engagement_duration = float(engagement_duration)
        self.sampling_interval = sampling_interval

    def run(
        self, trace: PowerTrace, x0: Optional[np.ndarray] = None
    ) -> DTMRun:
        """Simulate the trace under closed-loop DTM."""
        model = self.model
        trace.check_floorplan(model.floorplan)
        dt = trace.dt
        interval = self.sampling_interval or dt
        sample_stride = max(1, int(round(interval / dt)))
        stepper = TrapezoidalStepper(model.network, dt)
        scale = self.policy.power_scale_vector(model.floorplan)

        x = np.zeros(model.n_nodes) if x0 is None else np.asarray(x0, float).copy()
        ambient = model.config.ambient
        engaged_until = -np.inf
        n_engagements = 0
        work = 0.0

        times = np.empty(trace.n_samples)
        sensor_max = np.empty(trace.n_samples)
        true_max = np.empty(trace.n_samples)
        engaged_flags = np.zeros(trace.n_samples, dtype=bool)
        block_temps = np.empty((trace.n_samples, len(model.floorplan)))

        for i in range(trace.n_samples):
            now = i * dt
            engaged = now < engaged_until
            block_power = trace.samples[i] * (scale if engaged else 1.0)
            node_power = model.node_power(block_power)
            x = stepper.step(x, node_power)
            work += (self.policy.performance_factor if engaged else 1.0) * dt

            silicon_field = model.silicon_cell_rise(x) + ambient
            times[i] = now + dt
            true_max[i] = silicon_field.max()
            block_temps[i] = model.block_rise(x) + ambient
            engaged_flags[i] = engaged

            if i % sample_stride == 0:
                reading = self.sensors.max_reading(
                    silicon_field, model.mapping
                )
                sensor_max[i] = reading
                if reading >= self.threshold:
                    if not engaged:
                        n_engagements += 1
                    engaged_until = now + dt + self.engagement_duration
            else:
                sensor_max[i] = sensor_max[i - 1] if i else np.nan

        performance = work / trace.duration
        return DTMRun(
            times=times,
            sensor_max=sensor_max,
            true_max=true_max,
            block_temps=block_temps,
            engaged=engaged_flags,
            performance=performance,
            n_engagements=n_engagements,
        )
