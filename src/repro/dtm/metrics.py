"""Metrics over DTM runs and temperature traces.

Quantifies the Section 5 comparisons: time spent in thermal violation,
engagement statistics, and how long a package takes to cool back below
threshold once DTM cuts the power (the paper's core argument for why
OIL-SILICON needs longer engagement durations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


def time_above_threshold(
    times: np.ndarray, temps: np.ndarray, threshold: float
) -> float:
    """Total time (s) a temperature trace spends at/above a threshold."""
    times = np.asarray(times, dtype=float)
    temps = np.asarray(temps, dtype=float)
    if times.size != temps.size or times.size < 2:
        raise ConfigurationError("need matching arrays with >= 2 samples")
    dt = np.diff(times)
    above = temps[1:] >= threshold
    return float(dt[above].sum())


@dataclass(frozen=True)
class EngagementStatistics:
    """Summary of DTM engagement episodes in a run."""

    count: int
    total_time: float
    mean_duration: float
    longest: float


def engagement_statistics(
    times: np.ndarray, engaged: np.ndarray
) -> EngagementStatistics:
    """Episode statistics from the controller's per-sample engage flags."""
    times = np.asarray(times, dtype=float)
    engaged = np.asarray(engaged, dtype=bool)
    if times.size != engaged.size:
        raise ConfigurationError("times and engaged flags must align")
    if times.size == 0 or not engaged.any():
        return EngagementStatistics(0, 0.0, 0.0, 0.0)
    dt = float(np.median(np.diff(times))) if times.size > 1 else 0.0
    edges = np.flatnonzero(np.diff(engaged.astype(int)))
    starts = list(edges[engaged[edges + 1]] + 1)
    ends = list(edges[~engaged[edges + 1]] + 1)
    if engaged[0]:
        starts.insert(0, 0)
    if engaged[-1]:
        ends.append(engaged.size)
    durations = [(e - s) * dt for s, e in zip(starts, ends)]
    return EngagementStatistics(
        count=len(durations),
        total_time=float(sum(durations)),
        mean_duration=float(np.mean(durations)),
        longest=float(max(durations)),
    )


def cooldown_time_after_trigger(
    times: np.ndarray,
    temps: np.ndarray,
    threshold: float,
    margin: float = 1.0,
) -> float:
    """Time from first crossing the threshold to falling ``margin``
    Kelvin below it.

    This is the quantity that dictates the minimum useful DTM
    engagement duration: engaging for less than this leaves the die
    still in (or immediately re-entering) violation.  Returns NaN if
    the trace never crosses or never cools below threshold - margin.
    """
    times = np.asarray(times, dtype=float)
    temps = np.asarray(temps, dtype=float)
    crossing = np.flatnonzero(temps >= threshold)
    if crossing.size == 0:
        return float("nan")
    start = int(crossing[0])
    below = np.flatnonzero(temps[start:] <= threshold - margin)
    if below.size == 0:
        return float("nan")
    return float(times[start + int(below[0])] - times[start])


def performance_penalty(performance: float) -> float:
    """Penalty fraction of a DTM run (1 - achieved/nominal)."""
    if not 0.0 <= performance <= 1.0 + 1e-9:
        raise ConfigurationError("performance must lie in [0, 1]")
    return max(0.0, 1.0 - performance)
