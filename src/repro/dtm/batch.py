"""Lockstep execution of K closed-loop DTM simulations on one model.

A DTM policy sweep (the Section 5.1 bench) runs the *same* package
model under several policies.  Serially each run pays its own
factorization and its own per-step solve; here the K controller states
advance as one ``(n_nodes, K)`` matrix through one shared
:class:`~repro.solver.transient.TrapezoidalStepper`.  Only the linear
solve is shared: every controller keeps its own engagement state,
sensor sampling, and performance accounting, evaluated per column
exactly as :meth:`~repro.dtm.controller.DTMController.run` does — so
each returned :class:`~repro.dtm.controller.DTMRun` is bitwise
identical to running that controller alone.
"""

from __future__ import annotations

from typing import Annotated, List, Optional, Sequence

import numpy as np

from .. import units
from ..errors import ConfigurationError
from ..power.trace import PowerTrace
from ..solver.transient import TrapezoidalStepper
from .controller import DTMController, DTMRun


def run_dtm_batch(
    controllers: Sequence[DTMController],
    traces: Sequence[PowerTrace],
    x0s: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> Annotated[List[DTMRun], units.hot_path()]:
    """Run K (controller, trace) pairs in lockstep on one shared model.

    Declared a :func:`repro.units.hot_path` root for the
    blocking-in-hot-path rule (R14): the lockstep stepping loop is the
    tightest per-sample path in the codebase, so nothing reachable
    from here may sleep, flock, or block on a queue.

    All controllers must reference the *same* model instance (one
    network, one factorization) and all traces must share one time
    grid (same ``dt``, same sample count) so the columns step
    together.  Violations raise :class:`ConfigurationError`; campaign
    callers treat that as "fall back to per-job execution".
    """
    if not controllers:
        raise ConfigurationError("need at least one controller")
    if len(traces) != len(controllers):
        raise ConfigurationError(
            f"{len(controllers)} controllers but {len(traces)} traces"
        )
    model = controllers[0].model
    for k, controller in enumerate(controllers[1:], start=1):
        if controller.model is not model:
            raise ConfigurationError(
                f"controller {k} uses a different model instance; "
                "batched DTM requires one shared model"
            )
    dt = traces[0].dt
    n_samples = traces[0].n_samples
    for k, trace in enumerate(traces):
        trace.check_floorplan(model.floorplan)
        # exact grid identity is required for lockstep stepping
        if trace.dt != dt or trace.n_samples != n_samples:
            raise ConfigurationError(
                f"trace {k} has a different time grid "
                f"(dt={trace.dt:g}, n={trace.n_samples}); batched DTM "
                f"requires dt={dt:g}, n={n_samples}"
            )

    n_scenarios = len(controllers)
    stepper = TrapezoidalStepper(model.network, dt)
    scales = [
        c.policy.power_scale_vector(model.floorplan) for c in controllers
    ]
    strides = [
        max(1, int(round((c.sampling_interval or dt) / dt)))
        for c in controllers
    ]
    ambient = model.config.ambient

    x = np.zeros((model.n_nodes, n_scenarios))
    if x0s is not None:
        if len(x0s) != n_scenarios:
            raise ConfigurationError(
                f"{len(x0s)} initial states for {n_scenarios} controllers"
            )
        for k, x0 in enumerate(x0s):
            if x0 is not None:
                x[:, k] = np.asarray(x0, float)

    engaged_until = [-np.inf] * n_scenarios
    n_engagements = [0] * n_scenarios
    work = [0.0] * n_scenarios

    times = np.empty(n_samples)
    sensor_max = [np.empty(n_samples) for _ in range(n_scenarios)]
    true_max = [np.empty(n_samples) for _ in range(n_scenarios)]
    engaged_flags = [
        np.zeros(n_samples, dtype=bool) for _ in range(n_scenarios)
    ]
    block_temps = [
        np.empty((n_samples, len(model.floorplan)))
        for _ in range(n_scenarios)
    ]

    power = np.empty((model.n_nodes, n_scenarios))
    for i in range(n_samples):
        now = i * dt
        engaged_now = [now < engaged_until[k] for k in range(n_scenarios)]
        for k, controller in enumerate(controllers):
            block_power = traces[k].samples[i] * (
                scales[k] if engaged_now[k] else 1.0
            )
            power[:, k] = model.node_power(block_power)
            work[k] += (
                controller.policy.performance_factor if engaged_now[k]
                else 1.0
            ) * dt
        x = stepper.step(x, power)
        times[i] = now + dt
        for k, controller in enumerate(controllers):
            column = np.ascontiguousarray(x[:, k])
            silicon_field = model.silicon_cell_rise(column) + ambient
            true_max[k][i] = silicon_field.max()
            block_temps[k][i] = model.block_rise(column) + ambient
            engaged_flags[k][i] = engaged_now[k]
            if i % strides[k] == 0:
                reading = controller.sensors.max_reading(
                    silicon_field, model.mapping
                )
                sensor_max[k][i] = reading
                if reading >= controller.threshold:
                    if not engaged_now[k]:
                        n_engagements[k] += 1
                    engaged_until[k] = (
                        now + dt + controller.engagement_duration
                    )
            else:
                sensor_max[k][i] = sensor_max[k][i - 1] if i else np.nan

    return [
        DTMRun(
            times=times.copy(),
            sensor_max=sensor_max[k],
            true_max=true_max[k],
            block_temps=block_temps[k],
            engaged=engaged_flags[k],
            performance=work[k] / traces[k].duration,
            n_engagements=n_engagements[k],
        )
        for k in range(n_scenarios)
    ]
