"""Dynamic thermal management: policies, closed-loop control, metrics."""

from .policies import DTMPolicy, FetchThrottle, DVFS, ClockGating
from .controller import DTMController, DTMRun
from .predictive import PredictiveDTMController
from .metrics import (
    time_above_threshold,
    engagement_statistics,
    cooldown_time_after_trigger,
)

__all__ = [
    "DTMPolicy",
    "FetchThrottle",
    "DVFS",
    "ClockGating",
    "DTMController",
    "DTMRun",
    "PredictiveDTMController",
    "time_above_threshold",
    "engagement_statistics",
    "cooldown_time_after_trigger",
]
