"""Model-predictive DTM: engage before the violation, not after.

Section 5.1's lesson is that a slow package (the oil bench) makes
reactive DTM inefficient: by the time the sensor sees the threshold,
the die is committed to a long excursion.  A controller that owns a
thermal model can instead *forecast*: at each sample it advances the
model one coarse step of length ``horizon`` under the current power
and engages if the forecast crosses the threshold.  The forecast costs
one back-substitution per sample (the horizon stepper's factorization
is built once), so this is cheap enough for runtime use -- and it is
exactly the kind of design-time-model + runtime-measurement synthesis
the paper advocates ("a proper way is to combine IR and sensor
measurements and thermal modeling", Section 5.4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..power.trace import PowerTrace
from ..sensors.sensor import SensorArray
from ..solver.transient import TrapezoidalStepper
from .controller import DTMRun
from .policies import DTMPolicy


class PredictiveDTMController:
    """Forecast-based DTM over a thermal model.

    Parameters match :class:`~repro.dtm.controller.DTMController`, plus
    ``horizon``: how far ahead (seconds) the controller forecasts when
    deciding whether to engage.  A horizon of 0 reduces to the reactive
    controller's behavior.
    """

    def __init__(
        self,
        model,
        sensors: SensorArray,
        policy: DTMPolicy,
        threshold: float,
        engagement_duration: float,
        horizon: float = 5e-3,
        sampling_interval: Optional[float] = None,
    ) -> None:
        if threshold <= model.config.ambient:
            raise ConfigurationError("threshold must exceed ambient")
        if engagement_duration <= 0:
            raise ConfigurationError("engagement_duration must be positive")
        if horizon < 0:
            raise ConfigurationError("horizon must be >= 0")
        self.model = model
        self.sensors = sensors
        self.policy = policy
        self.threshold = float(threshold)
        self.engagement_duration = float(engagement_duration)
        self.horizon = float(horizon)
        self.sampling_interval = sampling_interval

    def run(self, trace: PowerTrace, x0: Optional[np.ndarray] = None
            ) -> DTMRun:
        """Simulate the trace under forecast-driven DTM."""
        model = self.model
        trace.check_floorplan(model.floorplan)
        dt = trace.dt
        interval = self.sampling_interval or dt
        sample_stride = max(1, int(round(interval / dt)))
        stepper = TrapezoidalStepper(model.network, dt)
        forecaster = (
            TrapezoidalStepper(model.network, self.horizon)
            if self.horizon > 0 else None
        )
        scale = self.policy.power_scale_vector(model.floorplan)
        ambient = model.config.ambient

        x = np.zeros(model.n_nodes) if x0 is None \
            else np.asarray(x0, float).copy()
        engaged_until = -np.inf
        n_engagements = 0
        work = 0.0

        n = trace.n_samples
        times = np.empty(n)
        sensor_max = np.empty(n)
        true_max = np.empty(n)
        engaged_flags = np.zeros(n, dtype=bool)
        block_temps = np.empty((n, len(model.floorplan)))

        for i in range(n):
            now = i * dt
            engaged = now < engaged_until
            block_power = trace.samples[i] * (scale if engaged else 1.0)
            node_power = model.node_power(block_power)
            x = stepper.step(x, node_power)
            work += (self.policy.performance_factor if engaged else 1.0) * dt

            silicon_field = model.block_rise(x) + ambient
            times[i] = now + dt
            true_field = self._cell_field(x) + ambient
            true_max[i] = float(np.max(true_field))
            block_temps[i] = silicon_field
            engaged_flags[i] = engaged

            if i % sample_stride == 0:
                reading = self.sensors.max_reading(
                    true_field, model.mapping
                ) if hasattr(model, "mapping") else float(
                    np.max(silicon_field)
                )
                sensor_max[i] = reading
                trigger = reading >= self.threshold
                if not trigger and forecaster is not None:
                    forecast = forecaster.step(x, node_power)
                    forecast_temp = float(
                        np.max(self._cell_field(forecast))
                    ) + ambient
                    trigger = forecast_temp >= self.threshold
                if trigger:
                    if not engaged:
                        n_engagements += 1
                    engaged_until = now + dt + self.engagement_duration
            else:
                sensor_max[i] = sensor_max[i - 1] if i else np.nan

        return DTMRun(
            times=times,
            sensor_max=sensor_max,
            true_max=true_max,
            block_temps=block_temps,
            engaged=engaged_flags,
            performance=work / trace.duration,
            n_engagements=n_engagements,
        )

    def _cell_field(self, state: np.ndarray) -> np.ndarray:
        if hasattr(self.model, "silicon_cell_rise"):
            return self.model.silicon_cell_rise(state)
        return self.model.block_rise(state)
