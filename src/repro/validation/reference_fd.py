"""A 3-D finite-difference reference solver (the ANSYS stand-in).

Solves transient heat conduction in the silicon die,

    rho c_p dT/dt = div(k grad T) + q,

on a structured ``nx x ny x nz`` grid with:

* a convective (Robin) boundary on the top surface, using the same
  laminar flat-plate correlation inputs as the physical oil flow
  (uniform ``h_L`` or local ``h(x)``), optionally augmented with the
  boundary layer's areal heat capacity so the coolant's thermal inertia
  is represented;
* adiabatic side walls and (by default) an adiabatic bottom -- the
  bare-die-in-oil validation geometry of the paper's Figs. 2 and 3;
* volumetric power injected in the bottom cell layer (the active
  silicon), from a per-column (W) map.

The discretization (7-point finite volumes, fine grid, resolved
through-die gradient, backward-Euler time stepping) shares no code with
the compact RC model in :mod:`repro.rcmodel`; the two agreeing is a
genuine cross-check, which is exactly how the paper uses ANSYS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from ..convection.flow import FlowSpec, local_h_field
from ..errors import SolverError
from ..materials import SILICON, Material
from ..units import require_positive


@dataclass
class FDTransientResult:
    """Probe trajectory from a transient reference solve."""

    times: np.ndarray
    values: np.ndarray

    def final(self) -> float:
        """Probe value at the end of the run."""
        return float(self.values[-1])


class ReferenceFDSolver:
    """Fine-grid 3-D conduction solver for a bare die under coolant flow.

    Parameters
    ----------
    die_width, die_height, die_thickness:
        Die dimensions in meters.
    flow:
        The coolant stream over the top surface.
    nx, ny, nz:
        Grid resolution; ``nz`` resolves the through-die direction.
    material:
        Die material (silicon by default).
    include_film_capacity:
        Attach the boundary layer's areal heat capacity
        (``rho_oil c_p,oil delta_t`` per unit area) to the surface
        cells, representing the coolant's thermal inertia in the
        transient response.
    """

    def __init__(
        self,
        die_width: float,
        die_height: float,
        die_thickness: float,
        flow: FlowSpec,
        nx: int = 40,
        ny: int = 40,
        nz: int = 5,
        material: Material = SILICON,
        include_film_capacity: bool = True,
    ) -> None:
        require_positive("die_width", die_width)
        require_positive("die_height", die_height)
        require_positive("die_thickness", die_thickness)
        if min(nx, ny, nz) < 1:
            raise SolverError("grid resolution must be >= 1 in every axis")
        self.die_width = die_width
        self.die_height = die_height
        self.die_thickness = die_thickness
        self.flow = flow
        self.nx, self.ny, self.nz = int(nx), int(ny), int(nz)
        self.material = material
        self.dx = die_width / nx
        self.dy = die_height / ny
        self.dz = die_thickness / nz
        self.n_cells = self.nx * self.ny * self.nz
        self._include_film = include_film_capacity
        self._build_system()

    # --- assembly ------------------------------------------------------------

    def _index(self, i: np.ndarray, j: np.ndarray, l: np.ndarray) -> np.ndarray:
        """Flat index for cell (i, j, l): x fastest, then y, then z."""
        return (l * self.ny + j) * self.nx + i

    def _build_system(self) -> None:
        k = self.material.conductivity
        dx, dy, dz = self.dx, self.dy, self.dz
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        vals: List[np.ndarray] = []

        ii, jj, ll = np.meshgrid(
            np.arange(self.nx), np.arange(self.ny), np.arange(self.nz),
            indexing="ij",
        )

        def couple(mask, di, dj, dl, conductance):
            a = self._index(ii[mask], jj[mask], ll[mask])
            b = self._index(ii[mask] + di, jj[mask] + dj, ll[mask] + dl)
            g = np.full(a.shape, conductance)
            rows.append(a)
            cols.append(b)
            vals.append(g)

        couple(ii < self.nx - 1, 1, 0, 0, k * dy * dz / dx)
        couple(jj < self.ny - 1, 0, 1, 0, k * dx * dz / dy)
        couple(ll < self.nz - 1, 0, 0, 1, k * dx * dy / dz)

        row = np.concatenate(rows)
        col = np.concatenate(cols)
        val = np.concatenate(vals)
        n = self.n_cells
        off = sparse.coo_matrix(
            (np.concatenate([-val, -val]),
             (np.concatenate([row, col]), np.concatenate([col, row]))),
            shape=(n, n),
        ).tocsr()
        degree = -np.asarray(off.sum(axis=1)).ravel()
        laplacian = off + sparse.diags(degree)

        # Robin boundary on the top surface: top-cell center is dz/2
        # below the wetted surface, so the cell-to-ambient conductance is
        # the series of half-cell conduction and the film coefficient.
        xs = (np.arange(self.nx) + 0.5) * dx
        ys = (np.arange(self.ny) + 0.5) * dy
        gx, gy = np.meshgrid(xs, ys)  # (ny, nx)
        h_field = local_h_field(
            self.flow, gx.ravel(), gy.ravel(), self.die_width, self.die_height
        )
        area = dx * dy
        g_surface = area / (dz / (2.0 * k) + 1.0 / h_field)
        ambient = np.zeros(n)
        top = self._index(
            np.tile(np.arange(self.nx), self.ny),
            np.repeat(np.arange(self.ny), self.nx),
            np.full(self.nx * self.ny, self.nz - 1),
        )
        ambient[top] = g_surface
        self._top_cells = top

        capacitance = np.full(n, self.material.volumetric_heat * dx * dy * dz)
        if self._include_film:
            film_per_area = self.flow.capacitance_per_area(
                self.die_width, self.die_height
            )
            capacitance[top] += film_per_area * area

        self._system = (laplacian + sparse.diags(ambient)).tocsc()
        self._capacitance = capacitance
        self._steady_factor = None

    # --- power input ---------------------------------------------------------

    def uniform_power(self, total_watts: float) -> np.ndarray:
        """Node power vector: ``total_watts`` spread uniformly over the
        bottom (active) layer."""
        require_positive("total_watts", total_watts)
        vector = np.zeros(self.n_cells)
        bottom = self._index(
            np.tile(np.arange(self.nx), self.ny),
            np.repeat(np.arange(self.ny), self.nx),
            np.zeros(self.nx * self.ny, dtype=int),
        )
        vector[bottom] = total_watts / (self.nx * self.ny)
        return vector

    def rect_power(
        self, x0: float, x1: float, y0: float, y1: float, watts: float
    ) -> np.ndarray:
        """Node power vector: ``watts`` uniform over a bottom-layer
        rectangle [x0, x1) x [y0, y1) (area-weighted at the borders)."""
        require_positive("watts", watts)
        if not (0 <= x0 < x1 <= self.die_width + 1e-12
                and 0 <= y0 < y1 <= self.die_height + 1e-12):
            raise SolverError("power rectangle outside the die")
        xs = np.arange(self.nx) * self.dx
        ys = np.arange(self.ny) * self.dy
        wx = np.clip(np.minimum(xs + self.dx, x1) - np.maximum(xs, x0), 0, None)
        wy = np.clip(np.minimum(ys + self.dy, y1) - np.maximum(ys, y0), 0, None)
        weights = np.outer(wy, wx)  # (ny, nx)
        total_area = weights.sum()
        if total_area <= 0:
            raise SolverError("power rectangle covers no cells")
        vector = np.zeros(self.n_cells)
        flat = self._index(
            np.tile(np.arange(self.nx), self.ny),
            np.repeat(np.arange(self.ny), self.nx),
            np.zeros(self.nx * self.ny, dtype=int),
        )
        vector[flat] = watts * weights.ravel() / total_area
        return vector

    # --- solves ---------------------------------------------------------------

    def steady_rise(self, node_power: np.ndarray) -> np.ndarray:
        """Steady temperature rise for every cell (flat vector)."""
        node_power = np.asarray(node_power, dtype=float)
        if node_power.shape != (self.n_cells,):
            raise SolverError("power vector has the wrong length")
        if self._steady_factor is None:
            self._steady_factor = splu(self._system)
        rise = self._steady_factor.solve(node_power)
        if not np.all(np.isfinite(rise)):
            raise SolverError("reference steady solve diverged")
        return rise

    def surface_rise(self, rise: np.ndarray) -> np.ndarray:
        """Top-surface (wetted) cell rises as an (ny, nx) map."""
        return rise[self._top_cells].reshape(self.ny, self.nx)

    def bottom_rise(self, rise: np.ndarray) -> np.ndarray:
        """Bottom (active-layer) cell rises as an (ny, nx) map."""
        bottom = self._index(
            np.tile(np.arange(self.nx), self.ny),
            np.repeat(np.arange(self.ny), self.nx),
            np.zeros(self.nx * self.ny, dtype=int),
        )
        return rise[bottom].reshape(self.ny, self.nx)

    def probe_index(self, x: float, y: float, layer: int = 0) -> int:
        """Flat index of the cell containing (x, y) in a given z layer."""
        i = min(int(x / self.dx), self.nx - 1)
        j = min(int(y / self.dy), self.ny - 1)
        layer = min(max(layer, 0), self.nz - 1)
        return int(self._index(np.array(i), np.array(j), np.array(layer)))

    def transient_probe(
        self,
        node_power: Union[np.ndarray, Callable[[float], np.ndarray]],
        t_end: float,
        dt: float,
        probe: int,
        x0: Optional[np.ndarray] = None,
    ) -> FDTransientResult:
        """Backward-Euler transient; records one probe cell's rise."""
        if t_end <= 0 or dt <= 0:
            raise SolverError("t_end and dt must be positive")
        lhs = splu((sparse.diags(self._capacitance / dt) + self._system).tocsc())
        x = np.zeros(self.n_cells) if x0 is None else np.asarray(x0, float).copy()
        if callable(node_power):
            power_at = node_power
        else:
            constant = np.asarray(node_power, dtype=float)
            power_at = lambda _t: constant  # noqa: E731
        n_steps = int(round(t_end / dt))
        times = [0.0]
        values = [float(x[probe])]
        for step in range(1, n_steps + 1):
            t = step * dt
            rhs = self._capacitance / dt * x + np.asarray(power_at(t), float)
            x = lhs.solve(rhs)
            times.append(t)
            values.append(float(x[probe]))
        self._last_state = x
        return FDTransientResult(np.asarray(times), np.asarray(values))
