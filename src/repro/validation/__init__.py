"""Independent reference solvers used to validate the compact RC model.

The paper validates its modified HotSpot against ANSYS (finite-element
CFD).  ANSYS is proprietary and unavailable here, so this package
provides :class:`ReferenceFDSolver`: an independent, finer-grained 3-D
finite-difference conduction solver with convective (Robin) boundary
conditions, written against a completely separate code path from
:mod:`repro.rcmodel`.  Agreement between the two solvers plays the same
role the ANSYS comparison plays in the paper (its Figs. 2 and 3).
"""

from .reference_fd import ReferenceFDSolver, FDTransientResult

__all__ = ["ReferenceFDSolver", "FDTransientResult"]
