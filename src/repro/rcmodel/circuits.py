"""Lumped equivalent thermal circuits of the paper's Fig. 7.

The paper explains the transient differences between the two packages
with two-node RC circuits:

* **AIR-SINK** (Fig. 7a): heat source -> R_Si -> (C_Si node) -> Rconv ->
  ambient, with the huge C_sink on the far side of R_conv.  Two widely
  separated time constants fall out:

  - short term (Eqn 5):  ``tau_short = R_Si * C_Si``  (the sink is so
    big that it looks like a fixed-temperature wall on ms time scales)
  - long term:           ``tau_long  = Rconv * C_sink``

* **OIL-SILICON** (Fig. 7b): the oil boundary layer's capacitance is
  tiny and R_Si << Rconv, so a single time constant dominates (Eqn 6):
  ``tau = Rconv * (C_Si + C_oil) ~= Rconv * C_Si``.

These analytic values are compared against time constants fitted from
the full grid model's step responses in the Fig. 7 bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated, Tuple

import numpy as np

from ..materials import Material, SILICON
from ..units import quantity, require_positive


@dataclass(frozen=True)
class LumpedRC:
    """A series two-node RC ladder driven by a heat source.

    ``r1/c1`` is the inner (silicon) node, ``r2/c2`` the outer
    (package/coolant) node; ``r2`` ends at ambient.
    """

    r1: float
    c1: float
    r2: float
    c2: float

    def __post_init__(self) -> None:
        require_positive("r1", self.r1)
        require_positive("c1", self.c1)
        require_positive("r2", self.r2)
        require_positive("c2", self.c2)

    def time_constants(self) -> Tuple[float, float]:
        """Exact (fast, slow) time constants of the two-node ladder.

        Solves the 2x2 eigenproblem of ``C dT/dt = -G T``; returns
        ``(tau_fast, tau_slow)`` in seconds.
        """
        g1 = 1.0 / self.r1
        g2 = 1.0 / self.r2
        conductance = np.array([[g1, -g1], [-g1, g1 + g2]])
        capacitance = np.diag([self.c1, self.c2])
        rates = np.linalg.eigvals(np.linalg.solve(capacitance, conductance))
        rates = np.sort(np.real(rates))
        taus = 1.0 / rates[::-1]  # fastest rate -> shortest tau first
        return float(taus[0]), float(taus[1])

    def step_response(self, power: float, times: np.ndarray) -> np.ndarray:
        """Inner-node temperature rise for a power step at t = 0."""
        g1 = 1.0 / self.r1
        g2 = 1.0 / self.r2
        conductance = np.array([[g1, -g1], [-g1, g1 + g2]])
        capacitance = np.diag([self.c1, self.c2])
        a = np.linalg.solve(capacitance, conductance)
        p = np.array([power / self.c1, 0.0])
        steady = np.linalg.solve(a, p)
        eigvals, eigvecs = np.linalg.eig(a)
        coeffs = np.linalg.solve(eigvecs, -steady)
        times = np.asarray(times, dtype=float)
        modes = eigvecs @ (coeffs[:, None] * np.exp(-eigvals[:, None] * times))
        return np.real(steady[0] + modes[0])


def silicon_vertical_resistance(
    area: Annotated[float, quantity("m^2")],
    thickness: Annotated[float, quantity("m")],
    material: Material = SILICON,
) -> Annotated[float, quantity("K/W")]:
    """Through-die conduction resistance ``t / (k A)`` in K/W.

    For the paper's 20 mm x 20 mm x 0.5 mm die this is the 0.0125 K/W
    quoted in Section 4.1.2.
    """
    require_positive("area", area)
    require_positive("thickness", thickness)
    return thickness / (material.conductivity * area)


def silicon_capacitance(
    area: Annotated[float, quantity("m^2")],
    thickness: Annotated[float, quantity("m")],
    material: Material = SILICON,
) -> Annotated[float, quantity("J/K")]:
    """Die thermal capacitance ``rho c_p V`` in J/K."""
    require_positive("area", area)
    require_positive("thickness", thickness)
    return material.volumetric_heat * area * thickness


def air_sink_short_term_time_constant(
    silicon_resistance: Annotated[float, quantity("K/W")],
    silicon_cap: Annotated[float, quantity("J/K")],
) -> Annotated[float, quantity("s")]:
    """Paper Eqn 5: ``tau_short,sink = R_th,Si * C_th,Si``."""
    return silicon_resistance * silicon_cap


def air_sink_long_term_time_constant(
    convection_resistance: Annotated[float, quantity("K/W")],
    sink_cap: Annotated[float, quantity("J/K")],
) -> Annotated[float, quantity("s")]:
    """Long-term AIR-SINK constant: ``Rconv * C_sink`` (Section 4.1.2)."""
    return convection_resistance * sink_cap


def oil_silicon_time_constant(
    convection_resistance: Annotated[float, quantity("K/W")],
    silicon_cap: Annotated[float, quantity("J/K")],
    oil_cap: Annotated[float, quantity("J/K")] = 0.0,
) -> Annotated[float, quantity("s")]:
    """Paper Eqn 6: ``tau_all,oil = Rconv * (C_th,Si + C_th,oil)``."""
    return convection_resistance * (silicon_cap + oil_cap)
