"""Compact thermal RC model (the modified-HotSpot core of the paper).

:class:`ThermalGridModel` turns a floorplan plus a
:class:`~repro.package.CoolingConfig` into a sparse thermal RC network:
every package layer is discretized on the die grid, layers that overhang
the die (spreader, heatsink, substrate, PCB) get lumped peripheral rim
nodes, and the convective boundaries become conductances to the ambient
node plus coolant capacitances (paper Eqns 1-4, Fig. 7).
"""

from .network import NetworkBuilder, ThermalNetwork
from .grid import ThermalGridModel
from .blockmodel import ThermalBlockModel, find_shared_edges
from .spice import write_spice_netlist, netlist_statistics
from .circuits import (
    air_sink_short_term_time_constant,
    air_sink_long_term_time_constant,
    oil_silicon_time_constant,
    LumpedRC,
)

__all__ = [
    "NetworkBuilder",
    "ThermalNetwork",
    "ThermalGridModel",
    "ThermalBlockModel",
    "find_shared_edges",
    "write_spice_netlist",
    "netlist_statistics",
    "air_sink_short_term_time_constant",
    "air_sink_long_term_time_constant",
    "oil_silicon_time_constant",
    "LumpedRC",
]
