"""Generic thermal RC networks.

A thermal network is an undirected graph of nodes with thermal
capacitances, conductances between node pairs, and conductances from
individual nodes to the ambient (a Dirichlet boundary folded out of the
system).  Writing ``x = T - T_ambient`` for the vector of temperature
rises:

* steady state:  ``A x = P``
* transient:     ``C dx/dt = P(t) - A x``

where ``A = L + diag(g_amb)`` combines the graph Laplacian ``L`` of the
inter-node conductances with the per-node ambient conductances.  ``A``
is symmetric and, whenever at least one node reaches ambient, positive
definite -- properties the tests assert and the solvers rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np
from scipy import sparse

from ..errors import ModelBuildError
from ..units import require_non_negative

#: Anything the vectorized builder methods broadcast over.
ArrayLike = Union[float, Sequence[float], np.ndarray]


class ThermalNetwork:
    """An assembled thermal RC network (see module docstring)."""

    def __init__(
        self,
        conductance: sparse.spmatrix,
        ambient_conductance: np.ndarray,
        capacitance: np.ndarray,
        node_labels: Optional[Dict[str, int]] = None,
    ) -> None:
        n = conductance.shape[0]
        if conductance.shape != (n, n):
            raise ModelBuildError("conductance matrix must be square")
        if ambient_conductance.shape != (n,) or capacitance.shape != (n,):
            raise ModelBuildError("vector lengths do not match matrix size")
        if np.any(capacitance <= 0):
            raise ModelBuildError("every node needs positive capacitance")
        if np.any(ambient_conductance < 0):
            raise ModelBuildError("ambient conductances must be >= 0")
        if ambient_conductance.sum() <= 0:
            raise ModelBuildError(
                "no path to ambient: the steady-state problem is singular"
            )
        self._laplacian = conductance.tocsr()
        self.ambient_conductance = ambient_conductance
        self.capacitance = capacitance
        self.node_labels = dict(node_labels or {})
        self._system: Optional[sparse.csc_matrix] = None

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the network (ambient excluded)."""
        return self._laplacian.shape[0]

    @property
    def laplacian(self) -> sparse.csr_matrix:
        """Graph Laplacian of inter-node conductances (no ambient)."""
        return self._laplacian

    @property
    def system_matrix(self) -> sparse.csc_matrix:
        """``A = L + diag(g_amb)``, cached in CSC form for factorization.

        The returned matrix is the cached instance itself, and the
        steady solver keys its LU factor cache on this matrix's
        content: an in-place edit of its buffers would silently
        invalidate that keying.  The CSC buffers are therefore frozen —
        mutate the network through its public fields and call
        :meth:`invalidate` instead, or ``.copy()`` the matrix first.
        """
        if self._system is None:
            system = (
                self._laplacian + sparse.diags(self.ambient_conductance)
            ).tocsc()
            system.data.setflags(write=False)
            system.indices.setflags(write=False)
            system.indptr.setflags(write=False)
            self._system = system
        return self._system

    def invalidate(self) -> None:
        """Drop the cached system matrix after an in-place mutation.

        Call after editing ``ambient_conductance`` (or the Laplacian)
        directly; the next solve then reassembles ``A`` and, because
        the steady solver keys its factor cache on the matrix content,
        refactorizes instead of reusing the stale factorization.
        """
        self._system = None

    def total_ambient_conductance(self) -> float:
        """Sum of all conductances to ambient, W/K."""
        return float(self.ambient_conductance.sum())

    def total_capacitance(self) -> float:
        """Sum of all node capacitances, J/K."""
        return float(self.capacitance.sum())

    def heat_to_ambient(self, rise: np.ndarray) -> float:
        """Total heat flow into the ambient for a temperature-rise state."""
        return float(self.ambient_conductance @ rise)


class NetworkBuilder:
    """Incremental construction of a :class:`ThermalNetwork`.

    Conductances between the same node pair accumulate (parallel
    combination); capacitance added to the same node accumulates too.
    """

    def __init__(self) -> None:
        self._capacitance: List[float] = []
        self._labels: Dict[str, int] = {}
        self._rows: List[int] = []
        self._cols: List[int] = []
        self._vals: List[float] = []
        self._amb_nodes: List[int] = []
        self._amb_vals: List[float] = []

    @property
    def n_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._capacitance)

    def add_node(self, capacitance: float, label: Optional[str] = None) -> int:
        """Add one node; returns its index."""
        require_non_negative("capacitance", capacitance)
        index = len(self._capacitance)
        self._capacitance.append(float(capacitance))
        if label is not None:
            if label in self._labels:
                raise ModelBuildError(f"duplicate node label {label!r}")
            self._labels[label] = index
        return index

    def add_nodes(self, capacitances: Sequence[float]) -> np.ndarray:
        """Add a block of nodes; returns their indices as an array."""
        capacitances = np.asarray(capacitances, dtype=float)
        if np.any(~np.isfinite(capacitances)) or np.any(capacitances < 0):
            raise ModelBuildError("capacitances must be finite and >= 0")
        start = len(self._capacitance)
        self._capacitance.extend(capacitances.tolist())
        return np.arange(start, start + len(capacitances))

    def add_capacitance(self, node: int, capacitance: float) -> None:
        """Add extra capacitance to an existing node (e.g. the oil layer
        lumped onto the wetted silicon surface, paper Fig. 7(b))."""
        require_non_negative("capacitance", capacitance)
        self._capacitance[node] += float(capacitance)

    def add_capacitances(self, nodes: np.ndarray, capacitances: ArrayLike) -> None:
        """Vectorized :meth:`add_capacitance`."""
        capacitances = np.broadcast_to(
            np.asarray(capacitances, dtype=float), np.shape(nodes)
        )
        for node, value in zip(np.asarray(nodes).ravel(), capacitances.ravel()):
            self.add_capacitance(int(node), float(value))

    def connect(self, a: int, b: int, conductance: float) -> None:
        """Add a conductance (W/K) between nodes ``a`` and ``b``."""
        if a == b:
            raise ModelBuildError("cannot connect a node to itself")
        require_non_negative("conductance", conductance)
        if conductance == 0.0:  # repro-ok: float-equality; exact zero = omitted edge
            return
        self._rows.append(int(a))
        self._cols.append(int(b))
        self._vals.append(float(conductance))

    def connect_many(
        self,
        a_nodes: Union[Sequence[int], np.ndarray],
        b_nodes: Union[Sequence[int], np.ndarray],
        conductances: ArrayLike,
    ) -> None:
        """Vectorized :meth:`connect` over parallel index arrays."""
        a_nodes = np.asarray(a_nodes).ravel()
        b_nodes = np.asarray(b_nodes).ravel()
        conductances = np.broadcast_to(
            np.asarray(conductances, dtype=float), a_nodes.shape
        )
        for a, b, g in zip(a_nodes, b_nodes, conductances):
            self.connect(int(a), int(b), float(g))

    def to_ambient(self, node: int, conductance: float) -> None:
        """Add a conductance from ``node`` to the ambient."""
        require_non_negative("conductance", conductance)
        if conductance == 0.0:  # repro-ok: float-equality; exact zero = no ambient path
            return
        self._amb_nodes.append(int(node))
        self._amb_vals.append(float(conductance))

    def to_ambient_many(
        self,
        nodes: Union[Sequence[int], np.ndarray],
        conductances: ArrayLike,
    ) -> None:
        """Vectorized :meth:`to_ambient`."""
        nodes = np.asarray(nodes).ravel()
        conductances = np.broadcast_to(
            np.asarray(conductances, dtype=float), nodes.shape
        )
        for node, g in zip(nodes, conductances):
            self.to_ambient(int(node), float(g))

    def build(self) -> ThermalNetwork:
        """Assemble the sparse Laplacian and return the network."""
        n = len(self._capacitance)
        if n == 0:
            raise ModelBuildError("network has no nodes")
        rows = np.asarray(self._rows + self._cols, dtype=int)
        cols = np.asarray(self._cols + self._rows, dtype=int)
        vals = np.asarray(self._vals + self._vals, dtype=float)
        if rows.size and (rows.max() >= n or cols.max() >= n):
            raise ModelBuildError("connection references an unknown node")
        off_diag = sparse.coo_matrix((-vals, (rows, cols)), shape=(n, n)).tocsr()
        degree = -np.asarray(off_diag.sum(axis=1)).ravel()
        laplacian = off_diag + sparse.diags(degree)
        ambient = np.zeros(n)
        np.add.at(ambient, np.asarray(self._amb_nodes, dtype=int),
                  np.asarray(self._amb_vals, dtype=float))
        capacitance = np.asarray(self._capacitance, dtype=float)
        if np.any(capacitance <= 0):
            zero = int(np.argmin(capacitance))
            raise ModelBuildError(
                f"node {zero} ended up with non-positive capacitance; every "
                f"physical node must store heat"
            )
        return ThermalNetwork(laplacian, ambient, capacitance, self._labels)
