"""Block-granularity compact thermal model (HotSpot's original mode).

The paper's modified HotSpot is built on the *block* model: one RC node
per floorplan block per layer, with lateral resistances between blocks
that share a boundary.  This module implements that mode alongside the
grid model, with the same oil-flow and secondary-path extensions, for
two reasons:

* fidelity -- it is the model class the paper actually ran, so running
  both lets the reproduction quantify how much of the remaining
  numerical gap (see EXPERIMENTS.md) is grid-vs-block granularity;
* speed -- tens of nodes instead of thousands, which makes long DTM
  sweeps and design-space exploration cheap.

Lateral resistance between two blocks sharing a boundary of length
``L`` follows HotSpot: half of each block's span perpendicular to the
shared edge, through the layer cross-section ``t * L``::

    R_ij = (w_i / 2 + w_j / 2) / (k * t * L)

Vertical resistance through a layer under block ``b`` is
``t / (k * A_b)`` (split into half-thickness series terms between
layer pairs).  Layers that overhang the die (spreader, heatsink,
substrate, PCB) become one lumped center node over the die footprint
plus four trapezoidal ring nodes per annulus -- the same geometry the
grid model's rim nodes use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..convection.flow import local_h_field
from ..errors import ConfigurationError
from ..floorplan.block import Floorplan
from ..package.config import CoolingConfig
from ..package.layers import ConvectionBoundary, Layer
from .network import NetworkBuilder, ThermalNetwork
from .peripheral import SIDES, RingGeometry


@dataclass(frozen=True)
class SharedEdge:
    """A boundary segment between two blocks."""

    a: int
    b: int
    length: float
    span_a: float  # block a's extent perpendicular to the edge
    span_b: float


def _interval_overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def find_shared_edges(
    floorplan: Floorplan, tolerance: float = 1e-9
) -> List[SharedEdge]:
    """All block-pair boundary segments of a floorplan.

    Two blocks share an edge when one's right edge coincides with the
    other's left edge (or top with bottom) and their spans overlap.
    """
    edges: List[SharedEdge] = []
    blocks = floorplan.blocks
    for i, a in enumerate(blocks):
        for j in range(i + 1, len(blocks)):
            b = blocks[j]
            if abs(a.x2 - b.x) < tolerance or abs(b.x2 - a.x) < tolerance:
                length = _interval_overlap(a.y, a.y2, b.y, b.y2)
                if length > tolerance:
                    edges.append(SharedEdge(i, j, length, a.width, b.width))
                    continue
            if abs(a.y2 - b.y) < tolerance or abs(b.y2 - a.y) < tolerance:
                length = _interval_overlap(a.x, a.x2, b.x, b.x2)
                if length > tolerance:
                    edges.append(SharedEdge(i, j, length, a.height, b.height))
    return edges


class _ChainState:
    """Bookkeeping while stacking layers away from the die.

    ``nodes`` is either a per-block array (die-footprint layers) or a
    single-element array holding the lumped center node (extended
    layers); ``rings`` carries the current extended layer's ring nodes.
    """

    def __init__(self, layer: Layer, nodes: np.ndarray) -> None:
        self.layer = layer
        self.nodes = nodes
        self.rings: List[Tuple[RingGeometry, Dict[str, int]]] = []

    @property
    def per_block(self) -> bool:
        return self.rings == [] and self.nodes.shape != (1,)


class ThermalBlockModel:
    """One-node-per-block compact model of a die in its package.

    Exposes the same power/temperature interface as
    :class:`~repro.rcmodel.grid.ThermalGridModel` (``node_power``,
    ``block_rise``, ``block_temperatures``, ``network``), so solvers,
    DTM, and the experiment harness accept either interchangeably.
    """

    def __init__(self, floorplan: Floorplan, config: CoolingConfig) -> None:
        self.floorplan = floorplan
        self.config = config
        self._builder = NetworkBuilder()
        self._edges = find_shared_edges(floorplan)
        self._assemble()
        self.network: ThermalNetwork = self._builder.build()
        del self._builder

    # --- layer construction -------------------------------------------------

    def _add_block_layer(self, layer: Layer) -> np.ndarray:
        """One node per block plus HotSpot lateral resistances."""
        k, t = layer.material.conductivity, layer.thickness
        vol_heat = layer.material.volumetric_heat
        nodes = self._builder.add_nodes(
            [vol_heat * t * block.area for block in self.floorplan]
        )
        for edge in self._edges:
            resistance = (edge.span_a / 2.0 + edge.span_b / 2.0) \
                / (k * t * edge.length)
            self._builder.connect(
                int(nodes[edge.a]), int(nodes[edge.b]), 1.0 / resistance
            )
        return nodes

    def _vertical_per_area(self, below: Layer, above: Layer) -> float:
        return below.thickness / (2 * below.material.conductivity) \
            + above.thickness / (2 * above.material.conductivity)

    def _connect_vertical(self, state: _ChainState, layer: Layer,
                          nodes: np.ndarray) -> None:
        """Couple the new layer's nodes to the chain's current layer."""
        per_area = self._vertical_per_area(state.layer, layer)
        die_area = self.floorplan.die_width * self.floorplan.die_height
        if state.nodes.shape == (len(self.floorplan),) \
                and nodes.shape == (len(self.floorplan),):
            for index, block in enumerate(self.floorplan):
                self._builder.connect(
                    int(state.nodes[index]), int(nodes[index]),
                    block.area / per_area,
                )
        elif state.nodes.shape == (len(self.floorplan),):
            for index, block in enumerate(self.floorplan):
                self._builder.connect(
                    int(state.nodes[index]), int(nodes[0]),
                    block.area / per_area,
                )
        else:
            self._builder.connect(
                int(state.nodes[0]), int(nodes[0]), die_area / per_area
            )

    def _add_extended_layer(
        self,
        layer: Layer,
        footprints: List[Tuple[float, float]],
        prefix: str,
    ) -> Tuple[int, List[Tuple[RingGeometry, Dict[str, int]]]]:
        """Lumped center node + ring nodes for an overhanging layer."""
        die_w = self.floorplan.die_width
        die_h = self.floorplan.die_height
        k, t = layer.material.conductivity, layer.thickness
        center = self._builder.add_node(
            layer.material.volumetric_heat * t * die_w * die_h,
            label=f"{prefix}{layer.name}:center",
        )
        rings: List[Tuple[RingGeometry, Dict[str, int]]] = []
        inner = (die_w, die_h)
        for outer in footprints:
            geometry = RingGeometry(inner[0], inner[1], outer[0], outer[1])
            inner = outer
            if geometry.total_area <= 1e-15:
                continue
            ring_nodes: Dict[str, int] = {}
            for side in SIDES:
                ring_nodes[side] = self._builder.add_node(
                    layer.material.volumetric_heat * t
                    * geometry.side_area(side),
                    label=f"{prefix}{layer.name}:ring{len(rings)}:{side}",
                )
            if not rings:
                for side in SIDES:
                    band = geometry.side_band(side)
                    if band <= 1e-15:
                        continue
                    span = die_h if side in ("N", "S") else die_w
                    self._builder.connect(
                        center, ring_nodes[side],
                        k * t * geometry.inner_edge_length(side)
                        / (span / 4.0 + band / 2.0),
                    )
            else:
                prev_geometry, prev_ring = rings[-1]
                for side in SIDES:
                    self._builder.connect(
                        prev_ring[side], ring_nodes[side],
                        k * t * geometry.inner_edge_length(side)
                        / ((prev_geometry.side_band(side)
                            + geometry.side_band(side)) / 2.0),
                    )
            rings.append((geometry, ring_nodes))
        return center, rings

    def _connect_rings_vertically(
        self, below: _ChainState, layer: Layer,
        rings: List[Tuple[RingGeometry, Dict[str, int]]],
    ) -> None:
        if not below.rings:
            return
        per_area = self._vertical_per_area(below.layer, layer)
        for (geom_lo, nodes_lo), (geom_hi, nodes_hi) in zip(
            below.rings, rings
        ):
            for side in SIDES:
                area = min(geom_lo.side_area(side), geom_hi.side_area(side))
                if area > 0:
                    self._builder.connect(
                        nodes_lo[side], nodes_hi[side], area / per_area
                    )

    def _assemble_chain(
        self,
        start: _ChainState,
        layers: Sequence[Layer],
        boundary: ConvectionBoundary,
        prefix: str,
    ) -> None:
        die_w = self.floorplan.die_width
        die_h = self.floorplan.die_height
        state = start
        footprints: List[Tuple[float, float]] = []
        for layer in layers:
            width, height = layer.footprint(die_w, die_h)
            if not layer.extends_beyond(die_w, die_h):
                nodes = self._add_block_layer(layer)
                self._connect_vertical(state, layer, nodes)
                new_state = _ChainState(layer, nodes)
            else:
                if (not footprints or width > footprints[-1][0] + 1e-12
                        or height > footprints[-1][1] + 1e-12):
                    footprints = footprints + [(width, height)]
                center, rings = self._add_extended_layer(
                    layer, footprints, prefix
                )
                self._connect_vertical(state, layer, np.array([center]))
                self._connect_rings_vertically(state, layer, rings)
                new_state = _ChainState(layer, np.array([center]))
                new_state.rings = rings
            state = new_state
        self._terminate(state, boundary)

    def _terminate(self, state: _ChainState,
                   boundary: ConvectionBoundary) -> None:
        die_w = self.floorplan.die_width
        die_h = self.floorplan.die_height
        width, height = state.layer.footprint(die_w, die_h)
        total_area = width * height
        per_block = state.nodes.shape == (len(self.floorplan),)

        def wetted() -> List[Tuple[int, float]]:
            """(node, area) pairs of the terminating surface."""
            if per_block:
                return [
                    (int(state.nodes[i]), block.area)
                    for i, block in enumerate(self.floorplan)
                ]
            pairs = [(int(state.nodes[0]), die_w * die_h)]
            for geometry, ring_nodes in state.rings:
                for side in SIDES:
                    pairs.append(
                        (ring_nodes[side], geometry.side_area(side))
                    )
            return pairs

        if boundary.total_resistance is not None:
            g_total = 1.0 / boundary.total_resistance
            for node, area in wetted():
                share = area / total_area
                self._builder.to_ambient(node, g_total * share)
                if boundary.total_capacitance > 0:
                    self._builder.add_capacitance(
                        node, boundary.total_capacitance * share
                    )
            return

        flow = boundary.flow
        if not per_block and not flow.uniform:
            raise ConfigurationError(
                "direction-dependent h(x) needs a die-footprint surface"
            )
        cap_per_area = flow.capacitance_per_area(width, height)
        if per_block:
            centers_x = np.array([b.center[0] for b in self.floorplan])
            centers_y = np.array([b.center[1] for b in self.floorplan])
            h_blocks = local_h_field(flow, centers_x, centers_y,
                                     width, height)
            for index, block in enumerate(self.floorplan):
                node = int(state.nodes[index])
                self._builder.to_ambient(
                    node, float(h_blocks[index]) * block.area
                )
                self._builder.add_capacitance(
                    node, cap_per_area * block.area
                )
        else:
            h_overall = flow.overall_h(width, height)
            for node, area in wetted():
                self._builder.to_ambient(node, h_overall * area)
                self._builder.add_capacitance(node, cap_per_area * area)

    def _assemble(self) -> None:
        silicon = self.config.die
        silicon_nodes = self._add_block_layer(silicon)
        self.silicon_nodes = silicon_nodes
        start = _ChainState(silicon, silicon_nodes)
        self._assemble_chain(
            start, self.config.layers_above, self.config.top_boundary,
            prefix="",
        )
        if self.config.secondary is not None:
            start = _ChainState(silicon, silicon_nodes)
            self._assemble_chain(
                start, self.config.secondary.layers,
                self.config.secondary.boundary, prefix="sec:",
            )

    # --- ThermalGridModel-compatible interface --------------------------------

    @property
    def n_nodes(self) -> int:
        """Total node count of the assembled network."""
        return self.network.n_nodes

    @property
    def ambient(self) -> float:
        """Ambient temperature, Kelvin."""
        return self.config.ambient

    def node_power(
        self, block_power: Union[np.ndarray, Dict[str, float], Sequence[float]]
    ) -> np.ndarray:
        """Per-block power (vector or dict) -> full node power vector."""
        if isinstance(block_power, dict):
            block_power = self.floorplan.power_vector(block_power)
        block_power = np.asarray(block_power, dtype=float)
        if block_power.shape != (len(self.floorplan),):
            raise ConfigurationError(
                f"expected {len(self.floorplan)} block powers"
            )
        vector = np.zeros(self.n_nodes)
        vector[self.silicon_nodes] = block_power
        return vector

    def block_rise(self, state: np.ndarray) -> np.ndarray:
        """Per-block temperature rise (the silicon nodes themselves)."""
        return np.asarray(state)[..., self.silicon_nodes]

    def block_temperatures(self, state: np.ndarray) -> np.ndarray:
        """Per-block absolute temperatures in Kelvin."""
        return self.block_rise(state) + self.config.ambient
