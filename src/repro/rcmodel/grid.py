"""The grid thermal model: floorplan + cooling config -> RC network.

Discretizes every package layer on an ``nx x ny`` grid over the die
footprint, adds lumped peripheral rim nodes for overhanging layers, and
terminates each stack with its convective boundary.  See the package
docstring of :mod:`repro.rcmodel` and DESIGN.md Section 5.1.
"""

from __future__ import annotations

import time
from typing import Annotated, Dict, List, Sequence, Tuple, Union

import numpy as np

from .. import obs
from .. import units
from ..convection.flow import local_h_field
from ..errors import ConfigurationError
from ..floorplan.block import Floorplan
from ..floorplan.grid_map import GridMapping
from ..package.config import CoolingConfig
from ..package.layers import ConvectionBoundary, Layer
from .network import NetworkBuilder, ThermalNetwork
from .peripheral import SIDES, RimRing, RingGeometry

_ASSEMBLIES = obs.metrics().counter("rcmodel.grid.assemblies")
_ASSEMBLY_SECONDS = obs.metrics().histogram("rcmodel.grid.assembly_seconds")


class _LayerNodes:
    """Node bookkeeping for one assembled layer."""

    def __init__(self, layer: Layer, grid_nodes: np.ndarray,
                 rings: List[RimRing]) -> None:
        self.layer = layer
        self.grid_nodes = grid_nodes
        self.rings = rings


class ThermalGridModel:
    """A compact thermal model of one die in one cooling configuration.

    Parameters
    ----------
    floorplan:
        The die floorplan (defines die size and power/temperature
        blocks).
    config:
        The cooling configuration (package stack + boundaries).
    nx, ny:
        Grid resolution over the die footprint.
    silicon_sublayers:
        Number of vertical sub-layers the die itself is split into.
        The default 1 matches HotSpot (and the paper's model); larger
        values resolve the through-die gradient, which matters when
        comparing against the finite-difference reference solver.
        Power is always injected in the bottom (active) sub-layer.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        config: CoolingConfig,
        nx: int = 32,
        ny: int = 32,
        silicon_sublayers: int = 1,
    ) -> None:
        if silicon_sublayers < 1:
            raise ConfigurationError("silicon_sublayers must be >= 1")
        self.floorplan = floorplan
        self.config = config
        self.mapping = GridMapping(floorplan, nx, ny)
        self.silicon_sublayers = int(silicon_sublayers)
        self._builder = NetworkBuilder()
        self.layer_nodes: Dict[str, _LayerNodes] = {}
        t0 = time.perf_counter()
        with obs.span("rcmodel.grid.assemble", nx=nx, ny=ny,
                      config=config.name, chip=floorplan.name):
            self._assemble()
            self.network: ThermalNetwork = self._builder.build()
        _ASSEMBLIES.inc()
        _ASSEMBLY_SECONDS.observe(time.perf_counter() - t0)
        del self._builder

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def _assemble(self) -> None:
        die_w = self.floorplan.die_width
        die_h = self.floorplan.die_height
        silicon_subs = self._add_silicon_sublayers()

        # Primary path: from the die's top sub-layer upward.
        top_of_die = silicon_subs[-1]
        last_primary = self._assemble_stack(
            start=top_of_die, layers=self.config.layers_above
        )
        self._terminate(last_primary, self.config.top_boundary)

        # Secondary path: from the die's bottom sub-layer downward.
        if self.config.secondary is not None:
            bottom_of_die = silicon_subs[0]
            last_secondary = self._assemble_stack(
                start=bottom_of_die, layers=self.config.secondary.layers
            )
            self._terminate(last_secondary, self.config.secondary.boundary)

        self.silicon_nodes = silicon_subs[0].grid_nodes
        self.surface_nodes = silicon_subs[-1].grid_nodes

    def _add_silicon_sublayers(self) -> List[_LayerNodes]:
        die = self.config.die
        sub_thickness = die.thickness / self.silicon_sublayers
        subs: List[_LayerNodes] = []
        for s in range(self.silicon_sublayers):
            name = "silicon" if s == 0 else f"silicon_sub{s}"
            sub = Layer(name, die.material, thickness=sub_thickness)
            nodes = self._add_grid_layer(sub)
            entry = _LayerNodes(sub, nodes, rings=[])
            self.layer_nodes[name] = entry
            if subs:
                self._connect_vertical(subs[-1], entry)
            subs.append(entry)
        return subs

    def _assemble_stack(
        self, start: _LayerNodes, layers: Sequence[Layer]
    ) -> _LayerNodes:
        """Attach a chain of layers onto ``start``; returns the last one."""
        die_w = self.floorplan.die_width
        die_h = self.floorplan.die_height
        previous = start
        footprints: List[Tuple[float, float]] = []
        for layer in layers:
            width, height = layer.footprint(die_w, die_h)
            if footprints and (width + 1e-12 < footprints[-1][0]
                               or height + 1e-12 < footprints[-1][1]):
                raise ConfigurationError(
                    f"layer {layer.name!r} footprint shrinks along the stack"
                )
            grid_nodes = self._add_grid_layer(layer)
            grows = (width > die_w + 1e-12 or height > die_h + 1e-12)
            if grows and (
                not footprints
                or width > footprints[-1][0] + 1e-12
                or height > footprints[-1][1] + 1e-12
            ):
                footprints = footprints + [(width, height)]
            rings = self._add_rings(layer, grid_nodes, footprints)
            entry = _LayerNodes(layer, grid_nodes, rings)
            if layer.name in self.layer_nodes:
                raise ConfigurationError(f"duplicate layer name {layer.name!r}")
            self.layer_nodes[layer.name] = entry
            self._connect_vertical(previous, entry)
            previous = entry
        return previous

    def _add_grid_layer(self, layer: Layer) -> np.ndarray:
        """Add grid nodes + lateral conductances for one layer."""
        m = self.mapping
        vol_heat = layer.material.volumetric_heat
        cell_cap = vol_heat * layer.thickness * m.cell_area
        nodes = self._builder.add_nodes(np.full(m.n_cells, cell_cap))
        k, t = layer.material.conductivity, layer.thickness
        ids = nodes.reshape(m.ny, m.nx)
        g_x = k * t * m.dy / m.dx
        g_y = k * t * m.dx / m.dy
        if m.nx > 1:
            self._builder.connect_many(
                ids[:, :-1].ravel(), ids[:, 1:].ravel(), g_x
            )
        if m.ny > 1:
            self._builder.connect_many(
                ids[:-1, :].ravel(), ids[1:, :].ravel(), g_y
            )
        return nodes

    def _add_rings(
        self,
        layer: Layer,
        grid_nodes: np.ndarray,
        footprints: List[Tuple[float, float]],
    ) -> List[RimRing]:
        """Add rim nodes for a layer and couple them laterally."""
        die_w = self.floorplan.die_width
        die_h = self.floorplan.die_height
        m = self.mapping
        k, t = layer.material.conductivity, layer.thickness
        rings: List[RimRing] = []
        inner = (die_w, die_h)
        for outer in footprints:
            geometry = RingGeometry(inner[0], inner[1], outer[0], outer[1])
            if geometry.total_area <= 1e-15:
                inner = outer
                continue
            nodes = {}
            for side in SIDES:
                cap = layer.material.volumetric_heat * t * geometry.side_area(side)
                nodes[side] = self._builder.add_node(
                    cap, label=f"{layer.name}:ring{len(rings)}:{side}"
                )
            ring = RimRing(geometry, nodes)
            if rings:
                # ring-to-ring lateral conduction on each side
                prev_ring = rings[-1]
                for side in SIDES:
                    length = ring.geometry.inner_edge_length(side)
                    distance = (prev_ring.geometry.side_band(side)
                                + ring.geometry.side_band(side)) / 2.0
                    self._builder.connect(
                        prev_ring.node(side), ring.node(side),
                        k * t * length / distance,
                    )
            else:
                # grid edge cells to the first ring
                ids = grid_nodes.reshape(m.ny, m.nx)
                edge = {
                    "N": ids[-1, :], "S": ids[0, :],
                    "E": ids[:, -1], "W": ids[:, 0],
                }
                cell_along = {"N": m.dx, "S": m.dx, "E": m.dy, "W": m.dy}
                cell_across = {"N": m.dy, "S": m.dy, "E": m.dx, "W": m.dx}
                for side in SIDES:
                    band = ring.geometry.side_band(side)
                    if band <= 1e-15:
                        continue
                    distance = cell_across[side] / 2.0 + band / 2.0
                    g = k * t * cell_along[side] / distance
                    self._builder.connect_many(
                        edge[side], np.full(edge[side].shape, ring.node(side),
                                            dtype=int), g
                    )
            rings.append(ring)
            inner = outer
        return rings

    def _connect_vertical(self, below: _LayerNodes, above: _LayerNodes) -> None:
        """Couple two adjacent layers: grid-to-grid and ring-to-ring."""
        m = self.mapping
        t_a, k_a = below.layer.thickness, below.layer.material.conductivity
        t_b, k_b = above.layer.thickness, above.layer.material.conductivity
        resist_per_area = t_a / (2.0 * k_a) + t_b / (2.0 * k_b)
        g_cell = m.cell_area / resist_per_area
        self._builder.connect_many(
            below.grid_nodes, above.grid_nodes, g_cell
        )
        shared = min(len(below.rings), len(above.rings))
        for r in range(shared):
            ring_lo, ring_hi = below.rings[r], above.rings[r]
            for side in SIDES:
                area = min(
                    ring_lo.geometry.side_area(side),
                    ring_hi.geometry.side_area(side),
                )
                if area <= 0:
                    continue
                self._builder.connect(
                    ring_lo.node(side), ring_hi.node(side),
                    area / resist_per_area,
                )

    def _terminate(self, last: _LayerNodes, boundary: ConvectionBoundary) -> None:
        """Apply a convective boundary to the far surface of ``last``."""
        m = self.mapping
        die_w, die_h = self.floorplan.die_width, self.floorplan.die_height
        width, height = last.layer.footprint(die_w, die_h)
        total_area = width * height

        if boundary.total_resistance is not None:
            g_total = 1.0 / boundary.total_resistance
            self._builder.to_ambient_many(
                last.grid_nodes, g_total * m.cell_area / total_area
            )
            if boundary.total_capacitance > 0:
                self._builder.add_capacitances(
                    last.grid_nodes,
                    boundary.total_capacitance * m.cell_area / total_area,
                )
            for ring in last.rings:
                for side in SIDES:
                    share = ring.geometry.side_area(side) / total_area
                    self._builder.to_ambient(ring.node(side), g_total * share)
                    if boundary.total_capacitance > 0:
                        self._builder.add_capacitance(
                            ring.node(side), boundary.total_capacitance * share
                        )
            return

        flow = boundary.flow
        if last.rings and not flow.uniform:
            raise ConfigurationError(
                "direction-dependent h(x) is only supported on die-footprint "
                "surfaces (the bare die); use uniform=True for extended layers"
            )
        cell_x, cell_y = m.cell_centers()
        h_cells = local_h_field(flow, cell_x, cell_y, width, height)
        self._builder.to_ambient_many(last.grid_nodes, h_cells * m.cell_area)
        cap_per_area = flow.capacitance_per_area(width, height)
        self._builder.add_capacitances(
            last.grid_nodes, cap_per_area * m.cell_area
        )
        h_overall = flow.overall_h(width, height)
        for ring in last.rings:
            for side in SIDES:
                area = ring.geometry.side_area(side)
                self._builder.to_ambient(ring.node(side), h_overall * area)
                self._builder.add_capacitance(ring.node(side),
                                              cap_per_area * area)

    # ------------------------------------------------------------------
    # Power and temperature interfaces
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total node count of the assembled network."""
        return self.network.n_nodes

    @property
    def ambient(self) -> float:
        """Ambient temperature of the configuration, Kelvin."""
        return self.config.ambient

    def node_power(
        self, block_power: Union[np.ndarray, Dict[str, float], Sequence[float]]
    ) -> Annotated[
        np.ndarray, units.array_shape("n_nodes"), units.array_dtype("float64")
    ]:
        """Expand per-block power (W) into the full node power vector.

        Accepts either a vector in floorplan order or a name->Watts
        mapping.  Power is injected into the die's active (bottom)
        sub-layer, uniformly over each block's footprint.
        """
        if isinstance(block_power, dict):
            block_power = self.floorplan.power_vector(block_power)
        cell_power = self.mapping.block_power_to_cells(
            np.asarray(block_power, dtype=float)
        )
        vector = np.zeros(self.n_nodes)
        vector[self.silicon_nodes] = cell_power
        return vector

    def silicon_cell_rise(self, state: np.ndarray) -> np.ndarray:
        """Temperature rise of the die's active layer cells (flat)."""
        return np.asarray(state)[..., self.silicon_nodes]

    def surface_cell_rise(self, state: np.ndarray) -> np.ndarray:
        """Temperature rise of the die's back-surface cells (what the IR
        camera observes through the oil)."""
        return np.asarray(state)[..., self.surface_nodes]

    def block_rise(self, state: np.ndarray) -> np.ndarray:
        """Per-block area-averaged temperature rise, floorplan order."""
        return self.mapping.cell_to_block_average(self.silicon_cell_rise(state))

    def block_temperatures(self, state: np.ndarray) -> np.ndarray:
        """Per-block absolute temperatures in Kelvin."""
        return self.block_rise(state) + self.config.ambient
