"""SPICE netlist export of thermal RC networks.

The thermal-electrical duality (temperature = voltage, heat flow =
current, thermal resistance/capacitance = R/C) means any circuit
simulator can solve these networks; HotSpot itself grew a netlist
exporter for exactly this reason.  This module writes a network as a
SPICE deck:

* node ``0`` is the ambient (electrical ground = thermal ambient);
* every inter-node conductance becomes a resistor ``R<i>``;
* every node capacitance becomes a capacitor ``C<i>`` to ground;
* block powers become current sources ``I<i>`` injecting into their
  nodes, so ``.OP`` reproduces the steady state and ``.TRAN`` the
  transient (node voltages are temperature *rises* in Kelvin).

The exporter is also a debugging aid: the netlist is a complete, flat,
human-readable statement of exactly what network was built.
"""

from __future__ import annotations

from typing import Dict, IO, Optional

import numpy as np
from scipy import sparse

from ..errors import ModelBuildError
from .network import ThermalNetwork


def write_spice_netlist(
    network: ThermalNetwork,
    stream: IO[str],
    node_power: Optional[np.ndarray] = None,
    title: str = "repro thermal RC network",
    transient: Optional[str] = None,
) -> Dict[str, int]:
    """Write the network as a SPICE deck.

    Parameters
    ----------
    network:
        The thermal network to export.
    stream:
        Text stream the deck is written to.
    node_power:
        Optional per-node heat injection (W) emitted as current
        sources.
    title:
        First line of the deck.
    transient:
        Optional ``.TRAN`` directive body (e.g. ``"1m 5"``); when
        omitted, an ``.OP`` steady-state analysis is requested.

    Returns
    -------
    Mapping from element kind to the number of elements written
    (``{"R": ..., "C": ..., "I": ...}``) for sanity checks.
    """
    if node_power is not None:
        node_power = np.asarray(node_power, dtype=float)
        if node_power.shape != (network.n_nodes,):
            raise ModelBuildError("node_power has the wrong length")

    counts = {"R": 0, "C": 0, "I": 0}
    stream.write(f"* {title}\n")
    stream.write(f"* {network.n_nodes} thermal nodes; node 0 = ambient; "
                 f"V = temperature rise (K)\n")

    # Inter-node resistors from the Laplacian's upper triangle.
    upper = sparse.triu(network.laplacian, k=1).tocoo()
    for i, j, value in zip(upper.row, upper.col, upper.data):
        conductance = -float(value)
        if conductance <= 0:
            continue
        counts["R"] += 1
        stream.write(
            f"R{counts['R']} N{i + 1} N{j + 1} {1.0 / conductance:.6e}\n"
        )

    # Ambient resistors.
    for i, g in enumerate(network.ambient_conductance):
        if g > 0:
            counts["R"] += 1
            stream.write(f"R{counts['R']} N{i + 1} 0 {1.0 / g:.6e}\n")

    # Capacitances to ambient.
    for i, c in enumerate(network.capacitance):
        counts["C"] += 1
        stream.write(f"C{counts['C']} N{i + 1} 0 {c:.6e}\n")

    # Heat injections.
    if node_power is not None:
        for i, p in enumerate(node_power):
            if p != 0.0:  # repro-ok: float-equality; exact zero = unpowered node
                counts["I"] += 1
                stream.write(f"I{counts['I']} 0 N{i + 1} DC {p:.6e}\n")

    if transient is not None:
        stream.write(f".TRAN {transient} UIC\n")
    else:
        stream.write(".OP\n")
    stream.write(".END\n")
    return counts


def netlist_statistics(text: str) -> Dict[str, int]:
    """Count R/C/I elements in a SPICE deck (for round-trip checks)."""
    counts = {"R": 0, "C": 0, "I": 0}
    for line in text.splitlines():
        line = line.strip()
        if line and line[0] in counts:
            counts[line[0]] += 1
    return counts
