"""Lumped peripheral rim nodes for package layers that overhang the die.

HotSpot's grid model resolves each layer only over the die footprint and
represents the overhang of the spreader, heatsink (and here also the
package substrate, solder array and PCB) with a small number of lumped
nodes.  We use four trapezoidal side nodes (north/south/east/west) per
annular ring; a layer overhung by several footprints gets one ring per
annulus (e.g. the heatsink: one ring under the spreader overhang, one
outside it).

All footprints are centered on the die center.  For an annulus between
inner footprint (w_in, h_in) and outer footprint (w_out, h_out), the
diagonal split gives:

* north/south trapezoid area: ``(w_out + w_in)/2 * (h_out - h_in)/2``
* east/west  trapezoid area: ``(h_out + h_in)/2 * (w_out - w_in)/2``

which sum to the full annulus area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ModelBuildError

#: Side keys in a fixed order (north, south, east, west).
SIDES: Tuple[str, str, str, str] = ("N", "S", "E", "W")


@dataclass(frozen=True)
class RingGeometry:
    """One annular ring of an extended layer."""

    inner_width: float
    inner_height: float
    outer_width: float
    outer_height: float

    def __post_init__(self) -> None:
        if (self.outer_width < self.inner_width - 1e-12
                or self.outer_height < self.inner_height - 1e-12):
            raise ModelBuildError("ring outer footprint smaller than inner")

    @property
    def band_x(self) -> float:
        """Overhang width on each of the east/west sides."""
        return (self.outer_width - self.inner_width) / 2.0

    @property
    def band_y(self) -> float:
        """Overhang width on each of the north/south sides."""
        return (self.outer_height - self.inner_height) / 2.0

    def side_area(self, side: str) -> float:
        """Area of one trapezoidal side node."""
        if side in ("N", "S"):
            return (self.outer_width + self.inner_width) / 2.0 * self.band_y
        if side in ("E", "W"):
            return (self.outer_height + self.inner_height) / 2.0 * self.band_x
        raise ModelBuildError(f"unknown side {side!r}")

    def side_band(self, side: str) -> float:
        """Radial extent of the ring on the given side."""
        return self.band_y if side in ("N", "S") else self.band_x

    def inner_edge_length(self, side: str) -> float:
        """Length of the boundary between this ring and the region inside."""
        return self.inner_width if side in ("N", "S") else self.inner_height

    @property
    def total_area(self) -> float:
        """Full annulus area."""
        return (self.outer_width * self.outer_height
                - self.inner_width * self.inner_height)


@dataclass
class RimRing:
    """A ring's geometry plus its four node indices in the network."""

    geometry: RingGeometry
    nodes: Dict[str, int]

    def node(self, side: str) -> int:
        """Network node index of one side."""
        return self.nodes[side]


def ring_boundaries(
    die_w: float,
    die_h: float,
    footprints: Sequence[Tuple[float, float]],
) -> List["RingGeometry"]:
    """Given increasing layer footprints, produce RingGeometry list.

    ``footprints`` is a sequence of (width, height) pairs, each at least
    as large as the previous; the first ring spans die -> footprints[0],
    the next footprints[0] -> footprints[1], and so on.  Degenerate rings
    (zero overhang) are skipped by the caller via ``total_area``.
    """
    rings = []
    inner = (die_w, die_h)
    for outer in footprints:
        rings.append(
            RingGeometry(
                inner_width=inner[0],
                inner_height=inner[1],
                outer_width=outer[0],
                outer_height=outer[1],
            )
        )
        inner = outer
    return rings
