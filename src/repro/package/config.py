"""The CoolingConfig container: a full package description.

A configuration always has a **primary path** -- the die (bottom layer
of the stack) plus everything above it, terminated by a convective
boundary -- and optionally a **secondary path** below the die
(interconnect, C4, substrate, solder, PCB) terminated by its own
convective boundary, per the paper's Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError
from .layers import ConvectionBoundary, Layer


@dataclass(frozen=True)
class SecondaryPath:
    """The heat path through the package pins beneath the die.

    ``layers`` are ordered from the die downward (interconnect first,
    PCB last); ``boundary`` cools the underside of the last layer.
    """

    layers: Tuple[Layer, ...]
    boundary: ConvectionBoundary

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError("secondary path needs at least one layer")


@dataclass(frozen=True)
class CoolingConfig:
    """A complete cooling configuration for one die.

    Parameters
    ----------
    name:
        Human-readable configuration name (e.g. ``"AIR-SINK"``).
    die:
        The silicon die layer itself (thickness, material).
    layers_above:
        Package layers stacked on the die's back surface, ordered from
        the die upward (e.g. TIM, spreader, heatsink).  May be empty --
        the OIL-SILICON configuration has bare silicon.
    top_boundary:
        Convective cooling applied to the top of the stack.
    secondary:
        Optional secondary path beneath the die.
    ambient:
        Coolant free-stream / ambient temperature in Kelvin.
    """

    name: str
    die: Layer
    layers_above: Tuple[Layer, ...]
    top_boundary: ConvectionBoundary
    secondary: Optional[SecondaryPath] = None
    ambient: float = 318.15  # 45 C, HotSpot default

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("configuration name must be non-empty")
        if self.ambient <= 0:
            raise ConfigurationError("ambient must be a Kelvin temperature > 0")
        if self.die.footprint_width is not None:
            raise ConfigurationError("the die layer must use the die footprint")
        # Footprints may only grow (or stay equal) going up the stack:
        # a narrower layer on top of a wider one would leave the model
        # with dangling peripheral regions it cannot route heat through.
        previous_name = self.die.name
        previous_extends = False
        for layer in self.layers_above:
            extends = layer.footprint_width is not None
            if previous_extends and not extends:
                raise ConfigurationError(
                    f"layer {layer.name!r} (die footprint) cannot sit above "
                    f"extended layer {previous_name!r}"
                )
            previous_name, previous_extends = layer.name, extends

    @property
    def stack(self) -> Tuple[Layer, ...]:
        """All primary-path layers, die first."""
        return (self.die,) + tuple(self.layers_above)

    def with_ambient(self, ambient: float) -> "CoolingConfig":
        """A copy of this configuration at a different ambient (K)."""
        return CoolingConfig(
            name=self.name,
            die=self.die,
            layers_above=self.layers_above,
            top_boundary=self.top_boundary,
            secondary=self.secondary,
            ambient=ambient,
        )

    def without_secondary(self) -> "CoolingConfig":
        """A copy with the secondary heat path removed (Fig. 5 ablation)."""
        return CoolingConfig(
            name=f"{self.name} (no secondary)",
            die=self.die,
            layers_above=self.layers_above,
            top_boundary=self.top_boundary,
            secondary=None,
            ambient=self.ambient,
        )
