"""The OIL-SILICON configuration: laminar oil over the bare die.

The IR thermal imaging setup: spreader and heatsink are removed, and an
IR-transparent mineral oil flows directly over the exposed back of the
silicon (paper Fig. 1).  The oil side is modelled per paper Eqns 1-4:
per-cell convection conductance from the (uniform or local) heat
transfer coefficient, plus the boundary layer's thermal capacitance
attached to the wetted silicon surface -- the lumped circuit of the
paper's Fig. 7(b).

Because the primary path is now a poor conductor, the secondary path
through the package pins carries a significant share of the heat and is
included by default (the paper's Fig. 5(a) shows omitting it causes
errors above 10 C).
"""

from __future__ import annotations

from typing import Optional

from ..convection.flow import FlowDirection, FlowSpec
from ..materials import MINERAL_OIL, SILICON, Fluid
from ..units import DEFAULT_AMBIENT_KELVIN, um
from .config import CoolingConfig, SecondaryPath
from .layers import ConvectionBoundary, Layer
from .secondary import default_pcb_oil_flow, default_secondary_path


def oil_silicon_package(
    die_width: float,
    die_height: float,
    velocity: float = 10.0,
    direction: FlowDirection = FlowDirection.LEFT_TO_RIGHT,
    die_thickness: float = um(500.0),
    fluid: Fluid = MINERAL_OIL,
    uniform_h: bool = False,
    target_resistance: Optional[float] = None,
    include_secondary: bool = True,
    ambient: float = DEFAULT_AMBIENT_KELVIN,
) -> CoolingConfig:
    """Build the OIL-SILICON cooling configuration.

    Parameters
    ----------
    die_width, die_height:
        Die footprint in meters.
    velocity:
        Free-stream oil velocity, m/s (10 m/s in the paper's
        validation experiments).
    direction:
        Oil flow direction across the die (paper Fig. 11 studies all
        four axis-aligned directions).
    die_thickness:
        Silicon thickness.
    fluid:
        The coolant; defaults to IR-transparent mineral oil.
    uniform_h:
        Apply the overall ``h_L`` uniformly instead of the local
        ``h(x)``; used when comparing against AIR-SINK at a pinned
        overall ``Rconv`` where direction effects must be excluded.
    target_resistance:
        If given, scale the oil-side conductance so the overall
        ``Rconv`` equals this value (the paper's "artificially set to
        0.3 K/W" comparison, Section 5.1).
    include_secondary:
        Model the path through the package pins and PCB, cooled by the
        same oil stream.  Default True (required for accuracy under
        oil, paper Fig. 5(a)).
    ambient:
        Oil free-stream temperature in Kelvin.
    """
    die = Layer("silicon", SILICON, thickness=die_thickness)
    flow = FlowSpec(
        fluid=fluid,
        velocity=velocity,
        direction=direction,
        uniform=uniform_h,
        target_resistance=target_resistance,
    )
    boundary = ConvectionBoundary(flow=flow)
    secondary: Optional[SecondaryPath] = None
    if include_secondary:
        secondary = default_secondary_path(
            die_width, die_height, oil_flow=default_pcb_oil_flow(velocity)
        )
    return CoolingConfig(
        name="OIL-SILICON",
        die=die,
        layers_above=(),
        top_boundary=boundary,
        secondary=secondary,
        ambient=ambient,
    )
