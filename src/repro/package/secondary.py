"""The secondary heat transfer path (paper Fig. 1, Section 3.1).

Heat leaving the active side of the die crosses, in order: the on-chip
interconnect stack, the C4 bumps and underfill, the package substrate,
the BGA solder balls, and the printed-circuit board, whose far side is
cooled either by the same IR-transparent oil stream (the IR-imaging
bench, where the board sits in the flow) or by natural air convection
(a normal system).

Layer thicknesses follow flip-chip BGA practice and HotSpot 5.0's
secondary-path defaults; conductivities are effective-medium values
documented in :mod:`repro.materials`.
"""

from __future__ import annotations

from typing import Annotated, Optional

from ..convection.flow import FlowDirection, FlowSpec
from ..materials import (
    C4_UNDERFILL,
    INTERCONNECT,
    MINERAL_OIL,
    PACKAGE_SUBSTRATE,
    PCB,
    SOLDER_BALLS,
)
from ..units import mm, quantity, um
from .config import SecondaryPath
from .layers import ConvectionBoundary, Layer

#: Natural-convection resistance for the PCB underside in a normal
#: (AIR-SINK) chassis.  The cavity under a socketed CPU is largely
#: enclosed (socket body, retention bracket, stagnant air): an
#: effective film coefficient of ~2-4 W/m^2K over the few-cm^2 socket
#: region, partially relieved by lateral board spreading, lands at
#: roughly a hundred K/W.  This is what makes the secondary path
#: negligible in a normal package (the paper's Fig. 5(b)): nearly all
#: heat exits through the heatsink.
NATURAL_CONVECTION_PCB_RESISTANCE = 120.0


def default_secondary_path(
    die_width: Annotated[float, quantity("m")],
    die_height: Annotated[float, quantity("m")],
    oil_flow: Optional[FlowSpec] = None,
    substrate_size: Annotated[float, quantity("m")] = mm(30.0),
    pcb_size: Annotated[float, quantity("m")] = mm(100.0),
) -> SecondaryPath:
    """Build the standard secondary path for a flip-chip BGA part.

    Parameters
    ----------
    die_width, die_height:
        Die footprint in meters (layers below the substrate overhang it).
    oil_flow:
        If given, the PCB underside is cooled by this oil stream (the
        IR-imaging bench, where the paper's Fig. 1 shows oil on both
        faces).  If None, the underside sees natural air convection, as
        in a normal chassis.
    substrate_size, pcb_size:
        Lateral extent (square) of the package substrate and the
        modelled PCB region.
    """
    layers = (
        Layer("interconnect", INTERCONNECT, thickness=um(12.0)),
        Layer("c4_underfill", C4_UNDERFILL, thickness=um(100.0)),
        Layer(
            "substrate",
            PACKAGE_SUBSTRATE,
            thickness=mm(0.7),
            footprint_width=substrate_size,
            footprint_height=substrate_size,
        ),
        Layer(
            "solder_balls",
            SOLDER_BALLS,
            thickness=um(800.0),
            footprint_width=substrate_size,
            footprint_height=substrate_size,
        ),
        Layer(
            "pcb",
            PCB,
            thickness=mm(1.6),
            footprint_width=pcb_size,
            footprint_height=pcb_size,
        ),
    )
    if oil_flow is not None:
        boundary = ConvectionBoundary(flow=oil_flow)
    else:
        boundary = ConvectionBoundary(
            total_resistance=NATURAL_CONVECTION_PCB_RESISTANCE
        )
    return SecondaryPath(layers=layers, boundary=boundary)


def default_pcb_oil_flow(
    velocity: Annotated[float, quantity("m/s")] = 10.0,
) -> FlowSpec:
    """The oil stream over the PCB underside in the IR-imaging bench.

    Uniform-h mode: the board's far side is well away from the die and
    the direction effect there has no influence on die temperatures.
    """
    return FlowSpec(
        fluid=MINERAL_OIL,
        velocity=velocity,
        direction=FlowDirection.LEFT_TO_RIGHT,
        uniform=True,
    )
