"""The paper's cooling-mechanism taxonomy as ready-made packages.

Section 2.1 catalogues convective cooling variants (forced air over a
heatsink, natural convection, forced water, forced oil over bare
silicon, microchannel cooling) and Section 5.1.1 notes that
high-power parts under IR measurement need help beyond the oil flow
(e.g. thermoelectric assistance) to reach realistic Rconv.  The
paper's conclusions then propose exploring "the entire design space of
thermal packages" as a design knob.

This module provides those configurations with documented,
representative parameters so the design-space sweep (see
``benchmarks/test_bench_design_space.py`` and
``examples/package_design_space.py``) runs over the same menu the
paper names.  Each is a normal :class:`CoolingConfig`; everything else
in the library (solvers, DTM, sensors) applies unchanged.
"""

from __future__ import annotations


from ..convection.flow import FlowDirection, FlowSpec
from ..errors import ConfigurationError
from ..materials import SILICON, WATER
from ..units import DEFAULT_AMBIENT_KELVIN, mm, require_positive, um
from .air_sink import air_sink_package
from .config import CoolingConfig
from .layers import ConvectionBoundary, Layer
from .oil_silicon import oil_silicon_package

#: A passive (fanless) heatsink reaches roughly 2-5 K/W to ambient;
#: natural convection over a bare small package is far worse.
NATURAL_CONVECTION_SINK_RESISTANCE = 4.0


def natural_convection_package(
    die_width: float,
    die_height: float,
    die_thickness: float = um(500.0),
    sink_resistance: float = NATURAL_CONVECTION_SINK_RESISTANCE,
    ambient: float = DEFAULT_AMBIENT_KELVIN,
) -> CoolingConfig:
    """A fanless system: spreader + passive sink, natural convection.

    Section 2.1: "natural convection for low-cost chips without a fan".
    Structurally identical to AIR-SINK but with a much larger
    convection resistance and no fan-driven coolant capacitance.
    """
    return air_sink_package(
        die_width, die_height,
        convection_resistance=sink_resistance,
        die_thickness=die_thickness,
        convection_capacitance=0.0,
        ambient=ambient,
    )


def water_cooled_package(
    die_width: float,
    die_height: float,
    velocity: float = 1.5,
    die_thickness: float = um(500.0),
    direction: FlowDirection = FlowDirection.LEFT_TO_RIGHT,
    include_cold_plate: bool = True,
    ambient: float = DEFAULT_AMBIENT_KELVIN,
) -> CoolingConfig:
    """Forced water cooling (Section 2.1: overclocked/server systems).

    With ``include_cold_plate`` the water flows over a thin copper cold
    plate attached through TIM (the practical arrangement); without it,
    the water flows over the bare die like the IR oil bench -- useful
    as a what-if, since water's far higher conductivity and lower
    Prandtl number give a much lower Rconv than oil at the same speed.
    """
    require_positive("velocity", velocity)
    flow = FlowSpec(fluid=WATER, velocity=velocity, direction=direction)
    if not include_cold_plate:
        config = oil_silicon_package(
            die_width, die_height, velocity=velocity, direction=direction,
            die_thickness=die_thickness, fluid=WATER,
            include_secondary=True, ambient=ambient,
        )
        return CoolingConfig(
            name="WATER-SILICON",
            die=config.die,
            layers_above=config.layers_above,
            top_boundary=config.top_boundary,
            secondary=config.secondary,
            ambient=ambient,
        )
    from ..materials import COPPER, THERMAL_INTERFACE

    die = Layer("silicon", SILICON, thickness=die_thickness)
    layers = (
        Layer("interface", THERMAL_INTERFACE, thickness=um(20.0)),
        Layer("cold_plate", COPPER, thickness=mm(3.0),
              footprint_width=max(die_width, mm(40.0)),
              footprint_height=max(die_height, mm(40.0))),
    )
    boundary = ConvectionBoundary(
        flow=FlowSpec(fluid=WATER, velocity=velocity,
                      direction=direction, uniform=True)
    )
    return CoolingConfig(
        name="WATER-PLATE",
        die=die,
        layers_above=layers,
        top_boundary=boundary,
        secondary=None,
        ambient=ambient,
    )


def microchannel_package(
    die_width: float,
    die_height: float,
    die_thickness: float = um(500.0),
    effective_h: float = 8.0e4,
    channel_depth: float = um(300.0),
    ambient: float = DEFAULT_AMBIENT_KELVIN,
) -> CoolingConfig:
    """Integrated microchannel cooling (Section 2.1, citing Koo et al.).

    Microchannels etched into (or bonded onto) the back of the die give
    effective heat transfer coefficients of 1e4-1e5 W/m^2K -- one to
    two orders of magnitude beyond the laminar oil flow.  Modelled as a
    uniform fixed-conductance boundary on the die back plus the
    channel water volume's heat capacity.
    """
    require_positive("effective_h", effective_h)
    die = Layer("silicon", SILICON, thickness=die_thickness)
    area = die_width * die_height
    resistance = 1.0 / (effective_h * area)
    water_capacitance = WATER.volumetric_heat * area * channel_depth
    boundary = ConvectionBoundary(
        total_resistance=resistance,
        total_capacitance=water_capacitance,
    )
    return CoolingConfig(
        name="MICROCHANNEL",
        die=die,
        layers_above=(),
        top_boundary=boundary,
        secondary=None,
        ambient=ambient,
    )


def tec_assisted_oil_package(
    die_width: float,
    die_height: float,
    resistance_reduction: float = 3.0,
    velocity: float = 10.0,
    direction: FlowDirection = FlowDirection.LEFT_TO_RIGHT,
    die_thickness: float = um(500.0),
    uniform_h: bool = False,
    include_secondary: bool = True,
    ambient: float = DEFAULT_AMBIENT_KELVIN,
) -> CoolingConfig:
    """Thermoelectrically assisted oil bench (paper Section 5.1.1).

    "For such chips, additional cooling mechanisms other than only the
    oil flow (e.g. thermoelectric cooling ...) might be necessary to
    further reduce Rconv ... In that case, since Rconv is lower, the
    short-term thermal time constant would be also shorter."

    Modelled as the oil bench with the overall oil-side resistance
    divided by ``resistance_reduction`` (the TEC pumping heat across
    the boundary), preserving the h(x) profile shape.  The shortened
    time constant falls out of the model exactly as the paper argues.
    """
    if resistance_reduction < 1.0:
        raise ConfigurationError("resistance_reduction must be >= 1")
    base_flow = FlowSpec(velocity=velocity, direction=direction)
    length_w, length_h = die_width, die_height
    base_resistance = base_flow.overall_resistance(length_w, length_h)
    config = oil_silicon_package(
        die_width, die_height, velocity=velocity, direction=direction,
        die_thickness=die_thickness, uniform_h=uniform_h,
        target_resistance=base_resistance / resistance_reduction,
        include_secondary=include_secondary, ambient=ambient,
    )
    return CoolingConfig(
        name=f"OIL+TEC(x{resistance_reduction:g})",
        die=config.die,
        layers_above=config.layers_above,
        top_boundary=config.top_boundary,
        secondary=config.secondary,
        ambient=ambient,
    )


def standard_package_menu(
    die_width: float,
    die_height: float,
    ambient: float = DEFAULT_AMBIENT_KELVIN,
) -> dict:
    """The Section 2.1 menu, name -> CoolingConfig, for sweeps."""
    return {
        "AIR-SINK": air_sink_package(
            die_width, die_height, convection_resistance=1.0,
            ambient=ambient,
        ),
        "NATURAL": natural_convection_package(
            die_width, die_height, ambient=ambient
        ),
        "OIL-SILICON": oil_silicon_package(
            die_width, die_height, uniform_h=True, ambient=ambient
        ),
        "OIL+TEC": tec_assisted_oil_package(
            die_width, die_height, ambient=ambient
        ),
        "WATER-PLATE": water_cooled_package(
            die_width, die_height, ambient=ambient
        ),
        "MICROCHANNEL": microchannel_package(
            die_width, die_height, ambient=ambient
        ),
    }
