"""Cooling configurations (thermal packages).

The paper compares two configurations for the same die (its Fig. 1 and
Section 3):

* :func:`air_sink_package` -- forced air over a copper heatsink attached
  through a copper spreader and a thermal interface layer (the normal
  high-performance package; HotSpot's default).
* :func:`oil_silicon_package` -- laminar IR-transparent oil flowing
  directly over the exposed back of the die (the IR-imaging setup),
  where the secondary heat transfer path through the package pins
  becomes significant and must be modelled.

Both produce a :class:`CoolingConfig` that the RC-model builder turns
into a sparse thermal network.
"""

from .layers import Layer, ConvectionBoundary
from .config import CoolingConfig, SecondaryPath
from .air_sink import air_sink_package, AirSinkGeometry
from .oil_silicon import oil_silicon_package
from .secondary import default_secondary_path
from .hotspot_config import (
    HotSpotConfig,
    parse_hotspot_config,
    format_hotspot_config,
    hotspot_equivalent_keys,
)
from .taxonomy import (
    natural_convection_package,
    water_cooled_package,
    microchannel_package,
    tec_assisted_oil_package,
    standard_package_menu,
)

__all__ = [
    "Layer",
    "ConvectionBoundary",
    "CoolingConfig",
    "SecondaryPath",
    "air_sink_package",
    "AirSinkGeometry",
    "oil_silicon_package",
    "default_secondary_path",
    "natural_convection_package",
    "water_cooled_package",
    "microchannel_package",
    "tec_assisted_oil_package",
    "standard_package_menu",
    "HotSpotConfig",
    "parse_hotspot_config",
    "format_hotspot_config",
    "hotspot_equivalent_keys",
]
