"""The AIR-SINK configuration: forced air over a copper heatsink.

This is HotSpot's default package and the paper's baseline: silicon die,
thermal interface material, copper heat spreader, copper heatsink, and a
fan providing an impinging air flow.  Following both HotSpot and the
paper, the air side is modelled as a lumped convection resistance
``Rconv`` (uniform over the sink surface -- Section 4.2 argues the
impinging fan flow and copper's spreading make direction effects
negligible for AIR-SINK) plus a lumped coolant capacitance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated, Optional

from ..errors import ConfigurationError
from ..materials import COPPER, SILICON, THERMAL_INTERFACE
from ..units import (
    DEFAULT_AMBIENT_KELVIN,
    mm,
    quantity,
    require_positive,
    um,
)
from .config import CoolingConfig, SecondaryPath
from .layers import ConvectionBoundary, Layer
from .secondary import default_secondary_path


@dataclass(frozen=True)
class AirSinkGeometry:
    """Dimensions of the spreader and heatsink (HotSpot defaults).

    The sink thickness is the HotSpot "equivalent slab" that matches the
    mass (hence thermal capacitance) of base plus fins; with these
    defaults the sink's capacitance is roughly 250x the capacitance of a
    20 mm x 20 mm x 0.5 mm die, the ratio the paper quotes in
    Section 4.1.2.
    """

    spreader_size: float = mm(30.0)
    spreader_thickness: float = mm(1.0)
    sink_size: float = mm(60.0)
    sink_thickness: float = mm(6.9)
    interface_thickness: float = um(20.0)  # HotSpot's default TIM

    def __post_init__(self) -> None:
        require_positive("spreader_size", self.spreader_size)
        require_positive("spreader_thickness", self.spreader_thickness)
        require_positive("sink_size", self.sink_size)
        require_positive("sink_thickness", self.sink_thickness)
        require_positive("interface_thickness", self.interface_thickness)
        if self.sink_size < self.spreader_size:
            raise ConfigurationError("heatsink smaller than spreader")


#: HotSpot's default lumped convection capacitance for the fan+air side.
DEFAULT_CONVECTION_CAPACITANCE = 140.4


def air_sink_package(
    die_width: Annotated[float, quantity("m")],
    die_height: Annotated[float, quantity("m")],
    convection_resistance: Annotated[float, quantity("K/W")] = 1.0,
    die_thickness: Annotated[float, quantity("m")] = um(500.0),
    geometry: Optional[AirSinkGeometry] = None,
    convection_capacitance: Annotated[float, quantity("J/K")] = (
        DEFAULT_CONVECTION_CAPACITANCE
    ),
    include_secondary: bool = False,
    ambient: Annotated[float, quantity("K")] = DEFAULT_AMBIENT_KELVIN,
) -> CoolingConfig:
    """Build the AIR-SINK cooling configuration.

    Parameters
    ----------
    die_width, die_height:
        Die footprint in meters.
    convection_resistance:
        Overall sink-to-air convection resistance ``Rconv`` in K/W
        (the paper uses 1.0 for Fig. 6 and 0.3 for Fig. 12).
    die_thickness:
        Silicon thickness (0.5 mm in the paper's validation die).
    geometry:
        Spreader/sink dimensions; defaults to HotSpot's.
    convection_capacitance:
        Lumped air-side capacitance at the sink surface, J/K.
    include_secondary:
        Model the board path too.  The paper's Fig. 5(b) shows it
        changes AIR-SINK results by under 1%, so it defaults to off;
        turn it on to reproduce that ablation.
    ambient:
        Ambient air temperature in Kelvin.
    """
    geometry = geometry or AirSinkGeometry()
    if geometry.spreader_size + 1e-12 < max(die_width, die_height):
        raise ConfigurationError("spreader smaller than the die")
    die = Layer("silicon", SILICON, thickness=die_thickness)
    layers_above = (
        Layer("interface", THERMAL_INTERFACE,
              thickness=geometry.interface_thickness),
        Layer(
            "spreader",
            COPPER,
            thickness=geometry.spreader_thickness,
            footprint_width=geometry.spreader_size,
            footprint_height=geometry.spreader_size,
        ),
        Layer(
            "sink",
            COPPER,
            thickness=geometry.sink_thickness,
            footprint_width=geometry.sink_size,
            footprint_height=geometry.sink_size,
        ),
    )
    boundary = ConvectionBoundary(
        total_resistance=convection_resistance,
        total_capacitance=convection_capacitance,
    )
    secondary: Optional[SecondaryPath] = None
    if include_secondary:
        secondary = default_secondary_path(die_width, die_height, oil_flow=None)
    return CoolingConfig(
        name="AIR-SINK",
        die=die,
        layers_above=layers_above,
        top_boundary=boundary,
        secondary=secondary,
        ambient=ambient,
    )
