"""Building blocks of a cooling configuration.

A cooling configuration is described declaratively as stacks of
:class:`Layer` objects plus :class:`ConvectionBoundary` terminations;
the RC-model builder (:mod:`repro.rcmodel.stack`) translates the
description into grid nodes, lumped peripheral nodes and conductances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..materials import Material
from ..convection.flow import FlowSpec
from ..units import require_positive


@dataclass(frozen=True)
class Layer:
    """One solid layer of the package stack.

    ``footprint_width``/``footprint_height`` give the lateral extent of
    the layer; ``None`` means "same as the die".  A layer larger than the
    die is modelled as a gridded center (the die footprint) plus lumped
    peripheral rim nodes, HotSpot style.
    """

    name: str
    material: Material
    thickness: float
    footprint_width: Optional[float] = None
    footprint_height: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("layer name must be non-empty")
        require_positive(f"thickness of layer {self.name!r}", self.thickness)
        if (self.footprint_width is None) != (self.footprint_height is None):
            raise ConfigurationError(
                f"layer {self.name!r}: give both footprint dimensions or neither"
            )
        if self.footprint_width is not None:
            require_positive("footprint_width", self.footprint_width)
            require_positive("footprint_height", self.footprint_height)

    def extends_beyond(self, die_width: float, die_height: float) -> bool:
        """Whether this layer overhangs the die footprint."""
        if self.footprint_width is None:
            return False
        return (
            self.footprint_width > die_width + 1e-12
            or self.footprint_height > die_height + 1e-12
        )

    def footprint(self, die_width: float, die_height: float):
        """Actual (width, height) of the layer given the die size."""
        if self.footprint_width is None:
            return die_width, die_height
        if (self.footprint_width + 1e-12 < die_width
                or self.footprint_height + 1e-12 < die_height):
            raise ConfigurationError(
                f"layer {self.name!r} footprint is smaller than the die"
            )
        return self.footprint_width, self.footprint_height


@dataclass(frozen=True)
class ConvectionBoundary:
    """A convective termination of a stack.

    Exactly one of ``flow`` and ``total_resistance`` selects the mode:

    * ``flow`` -- a :class:`~repro.convection.flow.FlowSpec`; the per-cell
      heat transfer coefficients come from the laminar flat-plate
      correlations (uniform or local h(x)), and the coolant's thermal
      capacitance (paper Eqn 3) is attached to the wetted surface.
    * ``total_resistance`` -- a fixed overall resistance to ambient in
      K/W, distributed over the wetted surface in proportion to area
      (how HotSpot models a fan+heatsink without resolving the air
      flow).  ``total_capacitance`` optionally adds the lumped coolant
      capacitance HotSpot calls ``c_convec``.
    """

    flow: Optional[FlowSpec] = None
    total_resistance: Optional[float] = None
    total_capacitance: float = 0.0

    def __post_init__(self) -> None:
        if (self.flow is None) == (self.total_resistance is None):
            raise ConfigurationError(
                "give exactly one of flow= or total_resistance="
            )
        if self.total_resistance is not None:
            require_positive("total_resistance", self.total_resistance)
        if self.total_capacitance < 0:
            raise ConfigurationError("total_capacitance must be >= 0")
