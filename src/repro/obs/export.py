"""Span exporters: JSONL, Chrome trace-event JSON, and summary trees.

Three consumers, three formats:

* **JSONL** — one span *tree* per line (the :meth:`Span.to_dict`
  nesting preserved).  Appendable, greppable, and the lossless format:
  ``repro trace report`` rebuilds full summary trees from it.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` object
  understood by ``chrome://tracing`` and Perfetto.  Every span becomes
  one complete (``"ph": "X"``) event; worker processes appear as
  separate ``pid`` tracks, timestamps are wall-clock microseconds so
  tracks from one machine line up.
* **summary tree** — a plain-text aggregation by span path (count,
  total seconds, percent of traced wall time) for terminals and CI
  logs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .tracing import Span

SpanDict = Dict[str, Any]


def _as_dict(span: Union[Span, SpanDict]) -> SpanDict:
    return span.to_dict() if isinstance(span, Span) else span


def _category(name: str) -> str:
    return name.split(".", 1)[0]


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------


def _events_for(span: SpanDict, events: List[Dict[str, Any]]) -> None:
    args = {str(k): v for k, v in span.get("attrs", {}).items()}
    if span.get("status", "ok") != "ok":
        args["status"] = span["status"]
    events.append({
        "name": str(span.get("name", "?")),
        "cat": _category(str(span.get("name", "?"))),
        "ph": "X",
        "ts": float(span.get("t_wall", 0.0)) * 1e6,
        "dur": float(span.get("duration_s", 0.0)) * 1e6,
        "pid": int(span.get("pid", 0)),
        "tid": int(span.get("tid", 0)),
        "args": args,
    })
    for child in span.get("children", []):
        _events_for(child, events)


def chrome_trace(roots: Iterable[Union[Span, SpanDict]]) -> Dict[str, Any]:
    """The Chrome trace-event object for a set of span trees."""
    events: List[Dict[str, Any]] = []
    for root in roots:
        _events_for(_as_dict(root), events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }


def write_chrome_trace(
    roots: Iterable[Union[Span, SpanDict]], path: str
) -> int:
    """Write a Perfetto-loadable trace file; returns the event count."""
    trace = chrome_trace(roots)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
    return len(trace["traceEvents"])


def validate_chrome_trace(data: Any) -> List[str]:
    """Schema-check a parsed Chrome trace object; returns problems.

    Checks the subset of the trace-event format the viewers actually
    require: a ``traceEvents`` list of objects, each with a string
    ``name``/``ph``, numeric ``ts`` (and ``dur`` for complete events),
    and integer ``pid``/``tid``.  An empty list means the file is
    loadable.
    """
    errors: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        errors.append("'traceEvents' is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            errors.append(f"{where}: missing string 'ph'")
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            errors.append(f"{where}: complete event missing numeric 'dur'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if len(errors) > 20:
            errors.append("... (further problems suppressed)")
            break
    return errors


# ---------------------------------------------------------------------------
# JSONL span logs
# ---------------------------------------------------------------------------


def write_spans_jsonl(
    roots: Iterable[Union[Span, SpanDict]], path: str
) -> int:
    """Append one JSON span tree per line; returns the root count."""
    count = 0
    with open(path, "a", encoding="utf-8") as handle:
        for root in roots:
            handle.write(json.dumps(_as_dict(root), sort_keys=True) + "\n")
            count += 1
    return count


def read_trace_file(path: str) -> Tuple[str, Any]:
    """Load a trace file, sniffing its format.

    Returns ``("chrome", <trace object>)`` for Chrome trace-event JSON
    or ``("jsonl", [<span dict>, ...])`` for JSONL span logs.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            data = json.loads(text)
        except ValueError:
            data = None
        if isinstance(data, dict) and "traceEvents" in data:
            return "chrome", data
    roots: List[SpanDict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "name" in record:
            roots.append(record)
    return "jsonl", roots


# ---------------------------------------------------------------------------
# Text summary trees
# ---------------------------------------------------------------------------


class _Agg:
    __slots__ = ("count", "total_s", "children")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.children: Dict[str, "_Agg"] = {}


def _aggregate(span: SpanDict, node: Dict[str, "_Agg"]) -> None:
    name = str(span.get("name", "?"))
    agg = node.setdefault(name, _Agg())
    agg.count += 1
    agg.total_s += float(span.get("duration_s", 0.0))
    for child in span.get("children", []):
        _aggregate(child, agg.children)


def span_summary(
    roots: Iterable[Union[Span, SpanDict]]
) -> Dict[str, Dict[str, float]]:
    """Flat per-name aggregate over whole trees: count and total time.

    This is the condensed form embedded in campaign manifests —
    ``{"solver.steady.solve": {"count": 4, "total_s": 1.93}, ...}``.
    """

    def walk(span: SpanDict, out: Dict[str, Dict[str, float]]) -> None:
        name = str(span.get("name", "?"))
        entry = out.setdefault(name, {"count": 0.0, "total_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += float(span.get("duration_s", 0.0))
        for child in span.get("children", []):
            walk(child, out)

    out: Dict[str, Dict[str, float]] = {}
    for root in roots:
        walk(_as_dict(root), out)
    return {
        name: {"count": v["count"], "total_s": round(v["total_s"], 6)}
        for name, v in out.items()
    }


def summary_tree(
    roots: Iterable[Union[Span, SpanDict]],
    total_s: Optional[float] = None,
) -> str:
    """Indented aggregate of span trees, one line per distinct path.

    Percentages are relative to ``total_s`` (default: the summed
    duration of the root spans), so the top line of a traced campaign
    reads ~100% and each child shows its share of the run.
    """
    tree: Dict[str, _Agg] = {}
    dicts = [_as_dict(root) for root in roots]
    for root in dicts:
        _aggregate(root, tree)
    if total_s is None:
        total_s = sum(float(r.get("duration_s", 0.0)) for r in dicts)
    width = _max_label_width(tree, 0) + 2
    lines = [
        f"{'span':<{width}} {'count':>7} {'total':>10} {'share':>7}",
    ]
    _format_level(tree, 0, width, total_s, lines)
    return "\n".join(lines)


def _max_label_width(tree: Dict[str, _Agg], depth: int) -> int:
    width = 0
    for name, agg in tree.items():
        width = max(width, 2 * depth + len(name),
                    _max_label_width(agg.children, depth + 1))
    return width


def _format_level(
    tree: Dict[str, _Agg],
    depth: int,
    width: int,
    total_s: float,
    lines: List[str],
) -> None:
    ordered = sorted(tree.items(), key=lambda kv: -kv[1].total_s)
    for name, agg in ordered:
        label = "  " * depth + name
        share = 100.0 * agg.total_s / total_s if total_s > 0 else 0.0
        lines.append(
            f"{label:<{width}} {agg.count:>6}x {agg.total_s:>9.4f}s "
            f"{share:>6.1f}%"
        )
        _format_level(agg.children, depth + 1, width, total_s, lines)


def chrome_summary_table(trace: Dict[str, Any]) -> str:
    """Per-name aggregate of a Chrome trace object (flat, no nesting)."""
    totals: Dict[str, Tuple[int, float]] = {}
    for event in trace.get("traceEvents", []):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        name = str(event.get("name", "?"))
        count, total = totals.get(name, (0, 0.0))
        totals[name] = (count + 1, total + float(event.get("dur", 0.0)) / 1e6)
    width = max([len(n) for n in totals] + [4]) + 2
    lines = [f"{'span':<{width}} {'count':>7} {'total':>10}"]
    for name, (count, total) in sorted(
        totals.items(), key=lambda kv: -kv[1][1]
    ):
        lines.append(f"{name:<{width}} {count:>6}x {total:>9.4f}s")
    return "\n".join(lines)
