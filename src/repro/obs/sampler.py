"""Wall-clock time-series sampling of metrics and process resources.

Spans answer *where did the time go* and counters *how often did it
happen*; neither answers *what did it look like over time* — was RSS
climbing through the campaign, did CPU stall while the pool waited,
when exactly did the solve counters plateau?  :class:`ResourceSampler`
answers that with a daemon thread that, every ``interval_s``, records
one row containing:

* the flattened :class:`~repro.obs.metrics.MetricsRegistry` snapshot,
* process RSS and cumulative CPU seconds (``/proc/self`` on Linux,
  ``os.times()``/``resource`` elsewhere),
* per-generation GC collection counts.

Rows go into a fixed-capacity ring (oldest evicted, writer never
blocked, same retention contract as the event buffer) and export two
ways: JSONL (one row per line, the CI artifact format) and Chrome
trace *counter* events (``ph: "C"``) that render as stacked counter
tracks alongside the span track in Perfetto.
"""

from __future__ import annotations

import gc
import json
import os
import threading
import time
from typing import Annotated, Any, Dict, List, Optional

from .. import units
from .metrics import MetricsRegistry, flatten_snapshot

SampleRow = Dict[str, Any]

#: Resource keys every sample row carries (beyond ``metrics``).
RESOURCE_KEYS = ("t_wall", "rss_bytes", "cpu_s", "gc_gen0", "gc_gen1", "gc_gen2")


def _page_size() -> int:
    try:
        return os.sysconf("SC_PAGE_SIZE")
    except (ValueError, OSError, AttributeError):
        return 4096


def read_proc_self() -> Dict[str, float]:
    """RSS bytes and cumulative CPU seconds for this process.

    Prefers ``/proc/self`` (statm for RSS, stat fields 14/15 for
    utime+stime in clock ticks); falls back to ``resource`` /
    ``os.times()`` where procfs is absent so sampling degrades rather
    than disappears off-Linux.
    """
    rss = 0.0
    cpu = 0.0
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            rss = float(handle.read().split()[1]) * _page_size()
        with open("/proc/self/stat", "r", encoding="ascii") as handle:
            # comm may contain spaces; everything after the closing paren
            # is the fixed-position numeric tail.
            tail = handle.read().rsplit(")", 1)[1].split()
            ticks = float(os.sysconf("SC_CLK_TCK"))
            cpu = (float(tail[11]) + float(tail[12])) / ticks
    except (OSError, IndexError, ValueError):
        try:
            import resource

            usage = resource.getrusage(resource.RUSAGE_SELF)
            rss = float(usage.ru_maxrss) * 1024.0
            cpu = float(usage.ru_utime) + float(usage.ru_stime)
        except Exception:  # noqa: BLE001 - platform without resource module
            times = os.times()
            cpu = float(times.user) + float(times.system)
    return {"rss_bytes": rss, "cpu_s": cpu}


class ResourceSampler:
    """Daemon-thread sampler of one registry plus process resources.

    ``start()`` launches the thread (one immediate sample, then every
    ``interval_s``); ``stop()`` takes a final sample and joins.  Also
    usable synchronously via :meth:`sample_now` — the overhead test
    measures exactly that path.
    """

    #: the ring and its eviction counter are written by the sampler
    #: thread while readers call :meth:`rows`/:meth:`summary`
    _ring: Annotated[List["SampleRow"], units.guarded_by("_lock")]
    evicted: Annotated[int, units.guarded_by("_lock")]

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval_s: float = 0.25,
        capacity: int = 4096,
    ) -> None:
        if capacity < 1:
            raise ValueError("sampler capacity must be >= 1")
        self._registry = registry
        self.interval_s = max(0.01, float(interval_s))
        self.capacity = capacity
        self.evicted = 0
        self.count = 0
        self._ring: List[SampleRow] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _resolve_registry(self) -> MetricsRegistry:
        if self._registry is None:
            import repro.obs as obs  # lazy: avoid a package import cycle

            self._registry = obs.metrics()
        return self._registry

    def sample_now(self) -> SampleRow:
        """Take one sample immediately and retain it; returns the row."""
        row: SampleRow = {"t_wall": time.time()}
        row.update(read_proc_self())
        gen0, gen1, gen2 = gc.get_count()
        row["gc_gen0"], row["gc_gen1"], row["gc_gen2"] = gen0, gen1, gen2
        row["metrics"] = flatten_snapshot(self._resolve_registry().snapshot())
        with self._lock:
            self._ring.append(row)
            self.count += 1
            if len(self._ring) > self.capacity:
                drop = len(self._ring) - self.capacity
                del self._ring[:drop]
                self.evicted += drop
        return row

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Start the daemon sampling thread (idempotent); returns self."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 2.0) -> None:
        """Take a final sample, stop the thread, and join it."""
        if self._thread is not None and self._thread.is_alive():
            self._stop.set()
            self._thread.join(timeout=timeout)
        self._thread = None
        self.sample_now()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _loop(self) -> None:
        self.sample_now()
        while not self._stop.wait(self.interval_s):
            self.sample_now()

    # -- reading and export -------------------------------------------------

    def rows(self) -> List[SampleRow]:
        """The retained sample rows, oldest first."""
        with self._lock:
            return list(self._ring)

    def write_jsonl(self, path: str) -> int:
        """Write retained rows as JSONL; returns the row count written."""
        rows = self.rows()
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)

    def chrome_counter_events(self, pid: Optional[int] = None) -> List[Dict[str, Any]]:
        """Chrome trace counter events (``ph: "C"``) for the sampled series.

        One ``repro.resources`` counter track (RSS in MiB, CPU seconds)
        plus one track per sampled metric; append these to
        :func:`repro.obs.export.chrome_trace` output and Perfetto draws
        them under the span track.
        """
        rows = self.rows()
        if not rows:
            return []
        process = pid if pid is not None else os.getpid()
        t0 = rows[0]["t_wall"]
        events: List[Dict[str, Any]] = []
        for row in rows:
            ts = (row["t_wall"] - t0) * 1e6
            events.append({
                "name": "repro.resources",
                "ph": "C",
                "ts": ts,
                "pid": process,
                "tid": 0,
                "args": {
                    "rss_mib": row.get("rss_bytes", 0.0) / (1024.0 * 1024.0),
                    "cpu_s": row.get("cpu_s", 0.0),
                },
            })
            metrics_flat = row.get("metrics") or {}
            for name in sorted(metrics_flat):
                events.append({
                    "name": name,
                    "ph": "C",
                    "ts": ts,
                    "pid": process,
                    "tid": 0,
                    "args": {"value": metrics_flat[name]},
                })
        return events


def read_samples_jsonl(path: str) -> List[SampleRow]:
    """All rows of a sampler JSONL file, skipping malformed lines."""
    rows: List[SampleRow] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "t_wall" in record:
                rows.append(record)
    return rows
