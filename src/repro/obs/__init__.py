"""``repro.obs`` — zero-dependency observability: tracing, metrics, logs.

The paper's experiments live or die on solver behaviour — LU
factorization reuse, millisecond-step transient integration,
sweep-scale job execution — and this package is how the rest of the
codebase *sees* that behaviour:

* :mod:`~repro.obs.tracing` — nested spans with context-manager and
  decorator APIs; the process-global tracer is a no-op until enabled,
  so instrumented hot paths cost one attribute check when off;
* :mod:`~repro.obs.metrics` — always-on counters/gauges/histograms
  for domain events (factorizations, cache hits, steps, retries),
  snapshot/merge-able across the campaign process pool;
* :mod:`~repro.obs.export` — JSONL span logs, Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto loadable), and plain-text summary
  trees;
* :mod:`~repro.obs.logsetup` — one-call stdlib-logging wiring for the
  CLI's ``--verbose``/``--quiet`` flags.

Everything here is pure stdlib: the solver and model layers may import
``repro.obs`` without dragging in numpy/scipy or any third-party
telemetry client.

Typical use::

    from repro import obs

    obs.enable_tracing()
    with obs.span("experiment.fig11"):
        run_fig11(...)
    obs.write_chrome_trace(obs.tracer().drain(), "fig11-trace.json")
"""

from .events import (
    EVENT_TYPES,
    Event,
    EventBuffer,
    EventPublisher,
    EventStream,
    StreamConfig,
    job_telemetry,
    make_event,
    read_events_jsonl,
)
from .export import (
    chrome_summary_table,
    chrome_trace,
    read_trace_file,
    span_summary,
    summary_tree,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from .ledger import (
    DEFAULT_LEDGER,
    DEFAULT_MAX_REGRESSION,
    Ledger,
    Regression,
    current_git_sha,
    lower_is_better,
    machine_fingerprint,
)
from .logsetup import logging_setup, verbosity_level
from .progress import CampaignProgress, JobProgress, LiveRenderer
from .sampler import ResourceSampler, read_proc_self, read_samples_jsonl
from .taxonomy import METRIC_NAMES, METRIC_PREFIXES, SPAN_NAMES, known_metric, known_span
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Snapshot,
    flatten_snapshot,
    scale_snapshot,
    snapshot_diff,
)
from .tracing import NULL_SPAN, AnySpan, NullSpan, Span, Tracer

#: Process-global default tracer (disabled until :func:`enable_tracing`).
_TRACER = Tracer()

#: Process-global default metrics registry (always on).
_METRICS = MetricsRegistry()


def tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _METRICS


def span(name: str, **attrs: object) -> AnySpan:
    """Open a span on the global tracer (no-op while disabled)."""
    if not _TRACER.enabled:
        return NULL_SPAN
    return _TRACER.span(name, **attrs)


def tracing_enabled() -> bool:
    """Whether the global tracer is currently recording."""
    return _TRACER.enabled


def enable_tracing() -> Tracer:
    """Turn the global tracer on; returns it for chaining."""
    _TRACER.enabled = True
    return _TRACER


def disable_tracing() -> Tracer:
    """Turn the global tracer off (completed roots are kept)."""
    _TRACER.enabled = False
    return _TRACER


__all__ = [
    "AnySpan",
    "CampaignProgress",
    "Counter",
    "DEFAULT_LEDGER",
    "DEFAULT_MAX_REGRESSION",
    "DEFAULT_TIME_BUCKETS",
    "EVENT_TYPES",
    "Event",
    "EventBuffer",
    "EventPublisher",
    "EventStream",
    "Gauge",
    "Histogram",
    "JobProgress",
    "Ledger",
    "LiveRenderer",
    "METRIC_NAMES",
    "METRIC_PREFIXES",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "Regression",
    "ResourceSampler",
    "SPAN_NAMES",
    "Snapshot",
    "Span",
    "StreamConfig",
    "Tracer",
    "chrome_summary_table",
    "chrome_trace",
    "current_git_sha",
    "disable_tracing",
    "enable_tracing",
    "flatten_snapshot",
    "job_telemetry",
    "known_metric",
    "known_span",
    "logging_setup",
    "lower_is_better",
    "machine_fingerprint",
    "make_event",
    "metrics",
    "read_events_jsonl",
    "read_proc_self",
    "read_samples_jsonl",
    "read_trace_file",
    "scale_snapshot",
    "snapshot_diff",
    "span",
    "span_summary",
    "summary_tree",
    "tracer",
    "tracing_enabled",
    "validate_chrome_trace",
    "verbosity_level",
    "write_chrome_trace",
    "write_spans_jsonl",
]
