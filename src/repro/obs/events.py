"""Live structured-event streaming across the campaign process pool.

PR 3's observability crosses the process boundary exactly once per
job, at completion, through ``JobOutcome.obs`` — which makes a long
campaign a black box while it runs.  This module adds the *during*:

* :class:`EventBuffer` — a bounded ring of structured events with a
  cursor-based reader and a subscriber API; the parent's single source
  of truth for "what is happening right now".
* :class:`EventPublisher` — the worker-side half: ``put_nowait`` onto
  a cross-process queue, **never blocking** the job.  A full queue
  drops the event and counts it (the cumulative drop count rides every
  later event, so the parent learns about drops it never saw).
* :class:`_HeartbeatThread` — emits one immediate heartbeat when a job
  starts and another every ``heartbeat_s``, each carrying the job's
  cumulative metric delta since start (flat ``name -> value``).
  Cumulative, not incremental: a dropped heartbeat self-heals at the
  next one.
* :class:`EventStream` — the parent-side assembly: queue creation
  (a ``multiprocessing.Manager`` queue when cross-process transport is
  available, a plain ``queue.Queue`` otherwise), a daemon drain thread
  folding events into the buffer and into a **live** metrics registry,
  and an optional JSONL sidecar so ``repro obs tail`` can follow a
  run from another process.

Design rule — *heartbeats are advisory, outcomes are authoritative*:
the drain folds heartbeat deltas only into the stream's own
``live_metrics`` registry (display state), never into the process-wide
:func:`repro.obs.metrics` registry, and workers count publish/drop on
plain attributes rather than global counters.  The completion path
(``JobOutcome.obs`` snapshots, manifest records, summary metrics)
is therefore bitwise identical with streaming on or off, and losing
every single event changes nothing but the live view.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from typing import Annotated, Any, Callable, Dict, List, Optional, Tuple

from .. import units
from .metrics import MetricsRegistry, Snapshot, flatten_snapshot, snapshot_diff

#: Event types emitted by the campaign engine, in lifecycle order.
EVENT_TYPES = (
    "campaign_started",
    "job_started",
    "job_heartbeat",
    "job_cached",
    "job_finished",
    "campaign_finished",
)

#: Sentinel event type that stops a drain thread.
_STOP = "__stop__"
#: Sentinel event type used by :meth:`EventStream.sync`.
_MARK = "__mark__"

Event = Dict[str, Any]
Subscriber = Callable[[Event], None]


def make_event(type: str, tag: str = "", **payload: Any) -> Event:
    """A plain-dict event: JSON-able, picklable, queue-able."""
    event: Event = {"type": type, "tag": tag, "t_wall": time.time(),
                    "pid": os.getpid()}
    event.update(payload)
    return event


class EventBuffer:
    """A bounded ring of events with sequence numbers and subscribers.

    Appends assign a monotonically increasing ``seq`` (stamped onto
    the event dict); once ``capacity`` is exceeded the oldest events
    are evicted — ring *retention*, not backpressure, so a slow reader
    loses history but never stalls a writer.  Subscribers run in the
    appender's thread; a raising subscriber is dropped (one bad
    renderer must not kill the drain).
    """

    #: concurrency contract, checked whole-program by R12: every
    #: mutation of the ring state must hold ``_lock``
    _events: Annotated[List[Event], units.guarded_by("_lock")]
    _seq: Annotated[int, units.guarded_by("_lock")]
    _subscribers: Annotated[List[Subscriber], units.guarded_by("_lock")]
    evicted: Annotated[int, units.guarded_by("_lock")]

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("event buffer capacity must be >= 1")
        self.capacity = capacity
        self.evicted = 0
        self._events: List[Event] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._subscribers: List[Subscriber] = []

    def append(self, event: Event) -> int:
        """Stamp a ``seq`` onto ``event``, retain it, notify; returns seq."""
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._events.append(event)
            if len(self._events) > self.capacity:
                drop = len(self._events) - self.capacity
                del self._events[:drop]
                self.evicted += drop
            subscribers = list(self._subscribers)
            seq = self._seq
        for subscriber in subscribers:
            try:
                subscriber(event)
            except Exception:  # noqa: BLE001 - a bad renderer must not kill drain
                self.unsubscribe(subscriber)
        return seq

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Call ``subscriber(event)`` on every future append."""
        with self._lock:
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove a subscriber (no-op when unknown)."""
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    def events(self, since: int = 0) -> List[Event]:
        """Retained events with ``seq > since`` (cursor-style reads)."""
        with self._lock:
            return [e for e in self._events if e.get("seq", 0) > since]

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class EventPublisher:
    """Worker-side event sender: non-blocking, drop-counting.

    Wraps any queue with ``put_nowait`` (a ``multiprocessing`` manager
    proxy in pool workers, a plain ``queue.Queue`` in-process).  The
    job must never stall on telemetry, so a full queue — or a broken
    manager connection — drops the event and bumps ``dropped``.
    Cumulative ``published``/``dropped`` counts are attached to every
    event under ``"stream"``, which is how the parent learns about
    drops even though the dropped events themselves never arrive.
    """

    published: Annotated[int, units.guarded_by("_lock")]
    dropped: Annotated[int, units.guarded_by("_lock")]

    def __init__(self, sink: Any) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self.published = 0
        self.dropped = 0

    def publish(self, event: Event) -> bool:
        """Enqueue without blocking; returns whether the event made it.

        The count-stamp-send sequence runs under ``_lock`` so that
        concurrent publishers (the job thread and its heartbeat thread
        share one publisher) never tear the accounting: every event's
        ``"stream"`` stamp is consistent with the counters at the
        moment it was enqueued, and ``published + dropped`` equals the
        number of :meth:`publish` calls exactly.  ``put_nowait`` never
        blocks, so holding the lock across it is cheap.
        """
        with self._lock:
            event["stream"] = {"published": self.published + 1,
                               "dropped": self.dropped}
            try:
                self._sink.put_nowait(event)
            except (queue.Full, OSError, ValueError, EOFError,
                    BrokenPipeError):
                self.dropped += 1
                event["stream"] = {"published": self.published,
                                   "dropped": self.dropped}
                return False
            self.published += 1
            return True


class _HeartbeatThread(threading.Thread):
    """Emits heartbeats for one running job on a fixed cadence.

    The first beat goes out immediately (so even sub-cadence jobs show
    at least one mid-flight event before their completion record), the
    rest every ``heartbeat_s``.  Each beat carries the cumulative flat
    metric delta since the job's ``before`` snapshot.
    """

    def __init__(
        self,
        publisher: EventPublisher,
        tag: str,
        kind: str,
        registry: MetricsRegistry,
        before: Snapshot,
        heartbeat_s: float,
    ) -> None:
        super().__init__(name=f"repro-heartbeat-{tag}", daemon=True)
        self._publisher = publisher
        self._tag = tag
        self._kind = kind
        self._registry = registry
        self._before = before
        self._heartbeat_s = max(0.01, float(heartbeat_s))
        self._halt = threading.Event()
        self._t0 = time.perf_counter()
        self.beats = 0

    def _beat(self) -> None:
        cumulative = flatten_snapshot(
            snapshot_diff(self._registry.snapshot(), self._before)
        )
        self._publisher.publish(make_event(
            "job_heartbeat", tag=self._tag, kind=self._kind,
            elapsed_s=time.perf_counter() - self._t0, metrics=cumulative,
        ))
        self.beats += 1

    def run(self) -> None:
        self._beat()  # immediate: every job shows up mid-flight at least once
        while not self._halt.wait(self._heartbeat_s):
            self._beat()

    def stop(self, timeout: float = 2.0) -> None:
        self._halt.set()
        self.join(timeout=timeout)


class StreamConfig:
    """The picklable worker-side slice of an :class:`EventStream`.

    Carries only what ``execute_job`` needs: the queue (a manager
    proxy survives pickling to pool workers under both ``fork`` and
    ``spawn``) and the heartbeat cadence.
    """

    __slots__ = ("queue", "heartbeat_s")

    def __init__(self, queue: Any, heartbeat_s: float) -> None:
        self.queue = queue
        self.heartbeat_s = heartbeat_s

    def publisher(self) -> EventPublisher:
        return EventPublisher(self.queue)


def job_telemetry(
    stream: Optional[StreamConfig],
    tag: str,
    kind: str,
    registry: MetricsRegistry,
    before: Optional[Snapshot] = None,
) -> Annotated[
    Tuple[Optional[EventPublisher], Optional[_HeartbeatThread]],
    units.effects("spawns-thread"),
]:
    """Start job-lifecycle streaming for one worker-side job.

    Publishes ``job_started`` and launches the heartbeat thread;
    returns ``(publisher, heartbeat)`` (both ``None`` when ``stream``
    is ``None``).  The caller must ``heartbeat.stop()`` when the job
    body finishes, whatever the outcome.
    """
    if stream is None:
        return None, None
    publisher = stream.publisher()
    publisher.publish(make_event("job_started", tag=tag, kind=kind))
    heartbeat = _HeartbeatThread(
        publisher, tag, kind, registry,
        before if before is not None else registry.snapshot(),
        stream.heartbeat_s,
    )
    heartbeat.start()
    return publisher, heartbeat


class EventStream:
    """Parent-side live-telemetry pipeline for campaign runs.

    Owns the queue, the :class:`EventBuffer`, a ``live_metrics``
    registry of folded heartbeat deltas, and the daemon drain thread.
    Construct one, pass it to
    :func:`repro.campaign.executor.run_campaign`, subscribe renderers
    with :meth:`subscribe`, and :meth:`stop` it when done (or use it
    as a context manager).

    ``cross_process=True`` asks for a ``multiprocessing.Manager``
    queue so pool workers can publish; when the manager cannot start
    (sandboxes without ``/dev/shm`` or process spawning) the stream
    degrades to a plain in-process queue and sets
    ``cross_process=False`` — the executor then simply runs pool
    workers without worker-side streaming, mirroring its own
    pool-unavailable fallback.
    """

    #: the JSONL sidecar handle is attached/detached from the caller
    #: thread while the drain thread writes to it
    _sidecar: Annotated[Optional[Any], units.guarded_by("_sidecar_lock")]

    def __init__(
        self,
        heartbeat_s: float = 0.5,
        capacity: int = 8192,
        cross_process: bool = True,
    ) -> None:
        self.heartbeat_s = float(heartbeat_s)
        self.buffer = EventBuffer(capacity)
        self.live_metrics = MetricsRegistry()
        self._manager: Optional[Any] = None
        self.cross_process = False
        if cross_process:
            try:
                import multiprocessing

                self._manager = multiprocessing.Manager()
                self._queue: Any = self._manager.Queue()
                self.cross_process = True
            except Exception:  # noqa: BLE001 - degrade like the executor's pool path
                self._manager = None
        if not self.cross_process:
            self._queue = queue.Queue()
        #: last cumulative flat metrics seen per running job tag
        self._last_flat: Dict[str, Dict[str, float]] = {}
        #: last cumulative (published, dropped) per publisher pid
        self._stream_stats: Dict[int, Tuple[float, float]] = {}
        self._drain: Optional[threading.Thread] = None
        self._marks: "queue.Queue[int]" = queue.Queue()
        self._sidecar: Optional[Any] = None
        self._sidecar_lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "EventStream":
        """Start the drain thread (idempotent); returns self."""
        if self._drain is None or not self._drain.is_alive():
            self._drain = threading.Thread(
                target=self._drain_loop, name="repro-event-drain", daemon=True
            )
            self._drain.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the drain thread and close the sidecar/manager."""
        if self._drain is not None and self._drain.is_alive():
            try:
                self._queue.put(make_event(_STOP))
            except Exception:  # noqa: BLE001 - queue may already be torn down
                pass
            self._drain.join(timeout=timeout)
        self._drain = None
        with self._sidecar_lock:
            if self._sidecar is not None:
                try:
                    self._sidecar.close()
                finally:
                    self._sidecar = None
        if self._manager is not None:
            try:
                self._manager.shutdown()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            self._manager = None
            self.cross_process = False
            self._queue = queue.Queue()

    def __enter__(self) -> "EventStream":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- producing ----------------------------------------------------------

    def worker_config(self) -> Optional[StreamConfig]:
        """The picklable config for pool workers (``None`` if in-process only)."""
        if not self.cross_process:
            return None
        return StreamConfig(self._queue, self.heartbeat_s)

    def local_config(self) -> StreamConfig:
        """The config for same-process publishers (serial jobs, batches)."""
        return StreamConfig(self._queue, self.heartbeat_s)

    def emit(self, type: str, tag: str = "", **payload: Any) -> None:
        """Publish a parent-side event onto the stream."""
        try:
            self._queue.put_nowait(make_event(type, tag=tag, **payload))
        except (queue.Full, OSError, ValueError):
            pass

    def sync(self, timeout: float = 5.0) -> bool:
        """Block until every event queued before this call has drained."""
        if self._drain is None or not self._drain.is_alive():
            return False
        token = time.monotonic_ns()
        try:
            self._queue.put(make_event(_MARK, token=token))
        except Exception:  # noqa: BLE001 - queue torn down mid-run
            return False
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                seen = self._marks.get(timeout=max(0.01, deadline - time.monotonic()))
            except queue.Empty:
                return False
            if seen == token:
                return True
        return False

    # -- consuming ----------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Run ``subscriber`` on every drained event (drain thread)."""
        return self.buffer.subscribe(subscriber)

    def attach_jsonl(self, path: str) -> None:
        """Mirror every drained event to a JSONL sidecar at ``path``.

        This is the file ``repro obs tail`` follows for already-running
        campaigns; each line is one event, flushed immediately.
        """
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with self._sidecar_lock:
            if self._sidecar is not None:
                self._sidecar.close()
            self._sidecar = open(path, "a", encoding="utf-8")

    def events(self, since: int = 0) -> List[Event]:
        """Retained events with ``seq > since`` (see :class:`EventBuffer`)."""
        return self.buffer.events(since)

    def live_totals(self) -> Dict[str, float]:
        """The folded live metric totals (flat ``name -> value``)."""
        return flatten_snapshot(self.live_metrics.snapshot())

    @property
    def dropped(self) -> float:
        """Total events known dropped across all publishers."""
        return self.live_metrics.counter("obs.events.dropped").value

    # -- the drain thread ---------------------------------------------------

    def _drain_loop(self) -> None:
        while True:
            try:
                event = self._queue.get(timeout=0.25)
            except queue.Empty:
                continue
            except (OSError, EOFError, ValueError):
                return  # queue torn down under us: stop draining
            if not isinstance(event, dict):
                continue
            etype = event.get("type")
            if etype == _STOP:
                return
            if etype == _MARK:
                self._marks.put(event.get("token", 0))
                continue
            self._fold(event)
            self.live_metrics.counter("campaign.stream.events").inc()
            self.buffer.append(event)
            self._write_sidecar(event)

    def _write_sidecar(self, event: Event) -> None:
        with self._sidecar_lock:
            if self._sidecar is None:
                return
            try:
                self._sidecar.write(json.dumps(event, sort_keys=True,
                                               default=str) + "\n")
                self._sidecar.flush()
            except (OSError, ValueError):
                self._sidecar = None

    def _fold(self, event: Event) -> None:
        """Incrementally fold one event into the live registry.

        Heartbeats carry *cumulative* job metrics; the fold adds only
        the increment over the last beat seen for that tag, so dropped
        beats self-heal and the live totals converge on the true
        counts without ever double-counting.
        """
        etype = event.get("type")
        tag = str(event.get("tag", ""))
        if etype == "job_heartbeat":
            self._fold_flat(tag, event.get("metrics"))
            self.live_metrics.counter("obs.events.heartbeats").inc()
        elif etype == "job_finished":
            self._fold_flat(tag, event.get("metrics"))
            self._last_flat.pop(tag, None)
        elif etype in ("campaign_started", "campaign_finished"):
            self._last_flat.clear()
        stream = event.get("stream")
        if isinstance(stream, dict):
            self._fold_stream_stats(int(event.get("pid", 0)), stream)

    def _fold_flat(self, tag: str, cumulative: Any) -> None:
        if not isinstance(cumulative, dict):
            return
        last = self._last_flat.get(tag, {})
        for name, value in cumulative.items():
            try:
                increment = float(value) - float(last.get(name, 0.0))
            except (TypeError, ValueError):
                continue
            if increment > 0:
                self.live_metrics.counter(str(name)).inc(increment)
        self._last_flat[tag] = {
            str(k): float(v) for k, v in cumulative.items()
            if isinstance(v, (int, float))
        }

    def _fold_stream_stats(self, pid: int, stats: Dict[str, Any]) -> None:
        published = float(stats.get("published", 0.0))
        dropped = float(stats.get("dropped", 0.0))
        last_pub, last_drop = self._stream_stats.get(pid, (0.0, 0.0))
        if published > last_pub:
            self.live_metrics.counter("obs.events.published").inc(
                published - last_pub
            )
        if dropped > last_drop:
            self.live_metrics.counter("obs.events.dropped").inc(
                dropped - last_drop
            )
        self._stream_stats[pid] = (max(published, last_pub),
                                   max(dropped, last_drop))


def read_events_jsonl(path: str) -> List[Event]:
    """All events of a JSONL sidecar file, skipping malformed lines."""
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "type" in record:
                events.append(record)
    return events
