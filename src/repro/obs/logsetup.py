"""Stdlib-logging wiring for the ``repro`` CLI and library.

The library logs through ordinary ``logging.getLogger("repro.*")``
loggers and never configures handlers itself — embedding applications
keep full control.  The CLI (and tests that want visible progress)
call :func:`logging_setup` once, which installs a single stderr
handler on the ``"repro"`` logger:

* verbosity ``<= -2`` — errors only;
* verbosity ``-1`` (``--quiet``) — warnings and errors;
* verbosity ``0`` (default) — info: per-job campaign progress lines;
* verbosity ``>= 1`` (``--verbose``) — debug: cache probes, span
  bookkeeping, retry scheduling.

Calling it again replaces the handler (picking up the *current*
``sys.stderr``, which matters under pytest's capture) rather than
stacking duplicates.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

#: Attribute marking handlers owned by :func:`logging_setup`.
_HANDLER_MARK = "_repro_obs_handler"


def verbosity_level(verbosity: int) -> int:
    """Map a ``-q``/``-v`` count to a :mod:`logging` level."""
    if verbosity <= -2:
        return logging.ERROR
    if verbosity == -1:
        return logging.WARNING
    if verbosity == 0:
        return logging.INFO
    return logging.DEBUG


def logging_setup(
    verbosity: int = 0, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Install (or replace) the ``repro`` log handler; returns the logger."""
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    setattr(handler, _HANDLER_MARK, True)
    handler.setFormatter(logging.Formatter("%(message)s"))
    level = verbosity_level(verbosity)
    handler.setLevel(level)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
