"""Campaign progress model fed by the live event stream.

:class:`CampaignProgress` is a pure fold over :mod:`repro.obs.events`
events — per-job state machine, throughput, cache-hit rate, ETA — with
no I/O of its own, so it is equally usable as the ``--live`` renderer's
model, by ``repro obs tail`` replaying a JSONL sidecar, and in tests
without a TTY.  :class:`LiveRenderer` is the thin terminal half:
subscribe it to a stream and it repaints a one-line status on a
throttled cadence (carriage-return rewrite on a TTY, plain lines
otherwise).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import IO, Annotated, Any, Dict, List, Optional

from .. import units
from .events import Event

#: Job states, in lifecycle order.
JOB_STATES = ("pending", "running", "finished", "failed", "cached")

#: Completion states — jobs that will not run again.
_DONE_STATES = frozenset({"finished", "failed", "cached"})


class JobProgress:
    """One job's live state as seen through the event stream."""

    __slots__ = ("tag", "kind", "state", "started_wall", "finished_wall",
                 "heartbeats", "elapsed_s", "status", "cached")

    def __init__(self, tag: str, kind: str = "") -> None:
        self.tag = tag
        self.kind = kind
        self.state = "pending"
        self.started_wall: Optional[float] = None
        self.finished_wall: Optional[float] = None
        self.heartbeats = 0
        self.elapsed_s = 0.0
        self.status = ""
        self.cached = False

    @property
    def done(self) -> bool:
        return self.state in _DONE_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tag": self.tag, "kind": self.kind, "state": self.state,
            "heartbeats": self.heartbeats, "elapsed_s": self.elapsed_s,
            "status": self.status,
        }


class CampaignProgress:
    """Fold of campaign lifecycle events into an aggregate progress view.

    Feed :meth:`observe` every event (subscribe it to an
    :class:`~repro.obs.events.EventStream`, or replay a sidecar file);
    read the derived aggregates at any time.  Thread-safe: events
    arrive on the drain thread while renderers read from elsewhere.
    """

    #: the job table and its insertion order are written by the drain
    #: thread (via :meth:`observe`) while renderers read them; R12
    #: checks every mutation holds ``_lock``
    _jobs: Annotated[Dict[str, JobProgress], units.guarded_by("_lock")]
    _order: Annotated[List[str], units.guarded_by("_lock")]

    def __init__(self, total: int = 0) -> None:
        self.total = total
        self.campaign = ""
        self.started_wall: Optional[float] = None
        self.finished_wall: Optional[float] = None
        self._jobs: Dict[str, JobProgress] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()

    # -- folding ------------------------------------------------------------

    def _job(self, tag: str, kind: str = "") -> JobProgress:
        job = self._jobs.get(tag)
        if job is None:
            job = JobProgress(tag, kind)
            self._jobs[tag] = job
            self._order.append(tag)
        elif kind and not job.kind:
            job.kind = kind
        return job

    def observe(self, event: Event) -> None:
        """Fold one event (unknown types are ignored)."""
        etype = event.get("type")
        tag = str(event.get("tag", ""))
        with self._lock:
            if etype == "campaign_started":
                self.campaign = str(event.get("campaign", self.campaign))
                self.total = int(event.get("total", self.total))
                self.started_wall = float(event.get("t_wall", time.time()))
                for pending in event.get("tags", []) or []:
                    self._job(str(pending))
            elif etype == "job_started":
                job = self._job(tag, str(event.get("kind", "")))
                job.state = "running"
                job.started_wall = float(event.get("t_wall", time.time()))
            elif etype == "job_heartbeat":
                job = self._job(tag, str(event.get("kind", "")))
                if not job.done:
                    job.state = "running"
                job.heartbeats += 1
                job.elapsed_s = float(event.get("elapsed_s", job.elapsed_s))
            elif etype == "job_cached":
                job = self._job(tag)
                job.state = "cached"
                job.cached = True
                job.status = "cached"
                job.finished_wall = float(event.get("t_wall", time.time()))
            elif etype == "job_finished":
                job = self._job(tag)
                status = str(event.get("status", "ok"))
                job.status = status
                job.state = "finished" if status == "ok" else "failed"
                job.elapsed_s = float(event.get("elapsed_s", job.elapsed_s))
                job.finished_wall = float(event.get("t_wall", time.time()))
            elif etype == "campaign_finished":
                self.finished_wall = float(event.get("t_wall", time.time()))

    # -- derived aggregates --------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Job counts by state (every state present, possibly zero)."""
        counts = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def jobs(self) -> List[JobProgress]:
        """Jobs in first-seen order."""
        with self._lock:
            return [self._jobs[tag] for tag in self._order]

    @property
    def done(self) -> int:
        counts = self.counts()
        return counts["finished"] + counts["failed"] + counts["cached"]

    @property
    def running(self) -> int:
        return self.counts()["running"]

    @property
    def finished(self) -> bool:
        return self.finished_wall is not None

    def cache_hit_rate(self) -> float:
        """Fraction of completed jobs served from the result cache."""
        counts = self.counts()
        done = counts["finished"] + counts["failed"] + counts["cached"]
        return counts["cached"] / done if done else 0.0

    def elapsed_s(self, now: Optional[float] = None) -> float:
        if self.started_wall is None:
            return 0.0
        end = self.finished_wall
        if end is None:
            end = now if now is not None else time.time()
        return max(0.0, end - self.started_wall)

    def throughput(self, now: Optional[float] = None) -> float:
        """Completed jobs per second of campaign wall time."""
        elapsed = self.elapsed_s(now)
        return self.done / elapsed if elapsed > 0 else 0.0

    def known_total(self) -> int:
        """Declared job total, or the number of jobs seen so far."""
        with self._lock:
            return self.total or len(self._jobs)

    def eta_s(self, now: Optional[float] = None) -> Optional[float]:
        """Estimated seconds to completion, ``None`` before any signal."""
        remaining = max(0, self.known_total() - self.done)
        if remaining == 0:
            return 0.0
        rate = self.throughput(now)
        if rate <= 0:
            return None
        return remaining / rate

    # -- rendering ----------------------------------------------------------

    def render_line(self, now: Optional[float] = None) -> str:
        """One-line status: counts, throughput, cache rate, ETA."""
        counts = self.counts()
        total = self.known_total()
        eta = self.eta_s(now)
        eta_text = f"{eta:.0f}s" if eta is not None else "?"
        name = self.campaign or "campaign"
        return (
            f"{name}: {self.done}/{total} done"
            f" ({counts['cached']} cached, {counts['failed']} failed)"
            f" | {counts['running']} running"
            f" | {self.throughput(now):.2f} jobs/s"
            f" | cache {self.cache_hit_rate():.0%}"
            f" | eta {eta_text}"
        )

    def render_table(self, now: Optional[float] = None) -> str:
        """Multi-line view: the status line plus one row per job."""
        lines = [self.render_line(now)]
        for job in self.jobs():
            beats = f" beats={job.heartbeats}" if job.heartbeats else ""
            elapsed = f" {job.elapsed_s:.2f}s" if job.elapsed_s else ""
            lines.append(f"  {job.state:<8} {job.tag}{elapsed}{beats}")
        return "\n".join(lines)


class LiveRenderer:
    """Terminal renderer for ``repro campaign run --live``.

    Subscribe :meth:`on_event` to a stream; it folds into the given
    :class:`CampaignProgress` and repaints at most every
    ``min_interval_s`` (every repaint on completion events so the final
    counts always land).  On a TTY the line rewrites in place; on a
    pipe it prints at most one line per repaint so logs stay readable.
    """

    #: written by whichever thread wins the repaint throttle race —
    #: the drain thread via :meth:`on_event` or the TTY loop
    _last_paint: Annotated[float, units.guarded_by("_lock")]

    def __init__(
        self,
        progress: CampaignProgress,
        out: Optional[IO[str]] = None,
        min_interval_s: float = 0.2,
    ) -> None:
        self.progress = progress
        self._out = out if out is not None else sys.stderr
        self._min_interval_s = float(min_interval_s)
        self._last_paint = 0.0
        self._lock = threading.Lock()
        try:
            self._tty = bool(self._out.isatty())
        except (AttributeError, ValueError):
            self._tty = False

    def on_event(self, event: Event) -> None:
        self.progress.observe(event)
        force = event.get("type") in (
            "job_finished", "job_cached", "campaign_finished"
        )
        now = time.monotonic()
        with self._lock:
            if not force and now - self._last_paint < self._min_interval_s:
                return
            self._last_paint = now
        self.paint()

    def paint(self) -> None:
        line = self.progress.render_line()
        try:
            if self._tty:
                self._out.write("\r\x1b[2K" + line)
                if self.progress.finished:
                    self._out.write("\n")
            else:
                self._out.write(line + "\n")
            self._out.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        """Final repaint (and newline on a TTY)."""
        if self._tty and not self.progress.finished:
            try:
                self._out.write("\r\x1b[2K" + self.progress.render_line() + "\n")
                self._out.flush()
            except (OSError, ValueError):
                pass
        else:
            self.paint()
