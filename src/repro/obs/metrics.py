"""Counters, gauges, and fixed-bucket histograms for domain events.

Where spans answer *where did the time go*, metrics answer *how often
did the interesting thing happen*: LU factorizations versus
fingerprint cache hits, implicit transient steps, result-cache
hits/misses, job retries.  Metrics are **always on** — an increment is
a lock acquire plus an add, and every instrumented event is coarse
(one per solve / factorization / cache probe), so the cost vanishes
next to the work being counted.  Only *timing* belongs behind the
tracer's enabled flag.

Cross-process aggregation works by value, not by reference: a worker
snapshots the registry before and after a job
(:meth:`MetricsRegistry.snapshot` / :func:`snapshot_diff`), ships the
delta back through the campaign's ``JobOutcome``, and the parent folds
it in with :meth:`MetricsRegistry.merge` — so pool runs and serial
runs report identical counts.
"""

from __future__ import annotations

import threading
from typing import Annotated, Any, Dict, List, Optional, Sequence, Tuple, Union

from .. import units

#: Default histogram buckets for durations in seconds: ~log-spaced from
#: 100 microseconds (one sparse triangular solve on a small grid) to
#: 30 s (a full-resolution campaign job).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
)


class Counter:
    """A monotonically increasing event count.

    ``lock`` lets a :class:`MetricsRegistry` share one registry-level
    lock across all of its instruments so a snapshot can't observe a
    torn mid-increment view; standalone instruments get a private one.
    """

    __slots__ = ("name", "_value", "_lock")

    #: mutations hold the (possibly registry-shared) lock; the
    #: ``value`` property is an intentional lock-free fast read
    _value: Annotated[float, units.guarded_by("_lock")]

    def __init__(self, name: str, lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (default 1) to the count."""
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "_value", "_lock")

    _value: Annotated[float, units.guarded_by("_lock")]

    def __init__(self, name: str, lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last bound, so ``len(counts) ==
    len(bounds) + 1``.  Tracks ``sum`` and ``count`` alongside the
    buckets (enough for mean + quantile estimates).
    """

    __slots__ = ("name", "bounds", "_counts", "_sum", "_n", "_lock")

    _counts: Annotated[List[int], units.guarded_by("_lock")]
    _sum: Annotated[float, units.guarded_by("_lock")]
    _n: Annotated[int, units.guarded_by("_lock")]

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        lock: Optional[threading.Lock] = None,
    ) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._n = 0
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._n += 1

    @property
    def count(self) -> int:
        return self._n

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> List[int]:
        return list(self._counts)


Metric = Union[Counter, Gauge, Histogram]

#: A snapshot: ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``.
Snapshot = Dict[str, Dict[str, Any]]


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics.

    Metric creation is idempotent by (name, type): asking for an
    existing name with the same type returns the live instance, with a
    different type raises — silent shadowing would split counts.
    """

    #: get-or-create and snapshot iterate/mutate this map from
    #: arbitrary threads; every access holds the registry lock
    _metrics: Annotated[Dict[str, "Metric"], units.guarded_by("_lock")]

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory: Any, kind: type) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        metric = self._get_or_create(
            name, lambda: Counter(name, lock=self._lock), Counter
        )
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get_or_create(
            name, lambda: Gauge(name, lock=self._lock), Gauge
        )
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._get_or_create(
            name,
            lambda: Histogram(name, buckets or DEFAULT_TIME_BUCKETS,
                              lock=self._lock),
            Histogram,
        )
        assert isinstance(metric, Histogram)
        return metric

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- value transport ----------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Plain-data copy of every metric's current value.

        Internally consistent: all reads happen under the single
        registry-level lock every registry-owned instrument shares, so
        a snapshot taken mid-increment can never observe instrument A
        after an event and instrument B before it.
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            for name, metric in self._metrics.items():
                if isinstance(metric, Counter):
                    counters[name] = metric._value
                elif isinstance(metric, Gauge):
                    gauges[name] = metric._value
                else:
                    histograms[name] = {
                        "bounds": list(metric.bounds),
                        "counts": list(metric._counts),
                        "sum": metric._sum,
                        "count": metric._n,
                    }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: Snapshot) -> None:
        """Fold a (delta) snapshot from another process into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (last write wins, same as in-process).
        """
        for name, value in snapshot.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, data.get("bounds") or None)
            incoming = list(data.get("counts", []))
            if list(hist.bounds) != [float(b) for b in data.get("bounds", [])]:
                # bucket mismatch: fall back to re-observing the mean
                count = int(data.get("count", 0))
                if count:
                    mean = float(data.get("sum", 0.0)) / count
                    for _ in range(count):
                        hist.observe(mean)
                continue
            with hist._lock:
                for i, n in enumerate(incoming[: len(hist._counts)]):
                    hist._counts[i] += int(n)
                hist._sum += float(data.get("sum", 0.0))
                hist._n += int(data.get("count", 0))


def snapshot_diff(after: Snapshot, before: Snapshot) -> Snapshot:
    """The change between two snapshots (``after - before``).

    Zero-delta counters/histograms are dropped so job records stay
    small; gauges keep their ``after`` value.
    """
    counters: Dict[str, float] = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0.0)
        if delta:
            counters[name] = delta
    gauges = dict(after.get("gauges", {}))
    histograms: Dict[str, Dict[str, Any]] = {}
    for name, data in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(name)
        if prior is None or list(prior.get("bounds", [])) != list(data["bounds"]):
            delta_counts = list(data["counts"])
            delta_sum = float(data["sum"])
            delta_n = int(data["count"])
        else:
            delta_counts = [
                int(a) - int(b)
                for a, b in zip(data["counts"], prior.get("counts", []))
            ]
            delta_sum = float(data["sum"]) - float(prior.get("sum", 0.0))
            delta_n = int(data["count"]) - int(prior.get("count", 0))
        if delta_n:
            histograms[name] = {
                "bounds": list(data["bounds"]),
                "counts": delta_counts,
                "sum": delta_sum,
                "count": delta_n,
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def scale_snapshot(snapshot: Snapshot, factor: float) -> Snapshot:
    """A copy of ``snapshot`` with counters/histograms scaled by ``factor``.

    Used to apportion a lockstep batch's metric delta evenly across its
    K member jobs (``factor = 1/K``): counter values, histogram bucket
    counts, sums, and counts all scale; gauges are instantaneous and
    pass through unscaled.  Scaled bucket counts may be fractional —
    apportioned snapshots are for *reporting* (flattened into manifest
    records), never merged back into a live registry.
    """
    counters = {
        name: value * factor
        for name, value in snapshot.get("counters", {}).items()
    }
    gauges = dict(snapshot.get("gauges", {}))
    histograms: Dict[str, Dict[str, Any]] = {}
    for name, data in snapshot.get("histograms", {}).items():
        histograms[name] = {
            "bounds": list(data.get("bounds", [])),
            "counts": [float(c) * factor for c in data.get("counts", [])],
            "sum": float(data.get("sum", 0.0)) * factor,
            "count": float(data.get("count", 0)) * factor,
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def flatten_snapshot(snapshot: Snapshot) -> Dict[str, float]:
    """One flat ``name -> number`` mapping for manifests and reports.

    Histograms contribute ``<name>.count`` and ``<name>.sum_s``; the
    bucket detail stays in the structured snapshot.
    """
    flat: Dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        flat[name] = value
    for name, value in snapshot.get("gauges", {}).items():
        flat[name] = value
    for name, data in snapshot.get("histograms", {}).items():
        flat[f"{name}.count"] = float(data.get("count", 0))
        flat[f"{name}.sum_s"] = float(data.get("sum", 0.0))
    return flat
