"""Persistent perf-regression ledger: BENCH numbers as a trajectory.

Benchmark results used to live in transient CI artifacts — each run
asserted against a hard-coded bound and the history evaporated.  The
ledger turns that into a *measured trajectory*: every bench run appends
``{bench, metric, value, machine, git_sha, timestamp}`` records to a
committed JSON file (``BENCH_obs.json``), and
``repro obs bench-report --check`` compares the newest point for each
(bench, metric) series against the **median of prior points from the
same machine fingerprint** — cross-machine noise can't fail the gate,
a genuine slowdown on the same hardware can.

Regression direction is inferred from the metric name suffix
(:func:`lower_is_better`): latency-like metrics (``*_s``,
``*_seconds``, ``*_bytes``) regress upward, rate-like metrics
(``*_per_sec``, ``*speedup``, ``*throughput``) regress downward.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

#: Ledger schema version for forward compatibility.
LEDGER_SCHEMA = 1

#: Default committed ledger file at the repo root.
DEFAULT_LEDGER = "BENCH_obs.json"

#: Fail --check when the newest point is worse than the same-machine
#: trajectory median by more than this fraction.
DEFAULT_MAX_REGRESSION = 0.25

_LOWER_SUFFIXES = ("_s", "_seconds", "_sec", "_ms", "_bytes", "_mib")
_HIGHER_SUFFIXES = ("_per_sec", "_per_s", "speedup", "throughput", "_rate")

Record = Dict[str, Any]


def machine_fingerprint() -> str:
    """A short stable id for *this* hardware/runtime combination.

    Hashes machine architecture, processor string, CPU count, and the
    Python major.minor — enough to keep a laptop and a CI runner in
    separate trajectories without leaking hostnames into the repo.
    """
    basis = "|".join([
        platform.machine(),
        platform.processor(),
        str(os.cpu_count() or 0),
        "py%d.%d" % (sys.version_info[0], sys.version_info[1]),
    ])
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:12]


def current_git_sha(cwd: Optional[str] = None) -> str:
    """The current commit sha, or ``"unknown"`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def lower_is_better(metric: str) -> bool:
    """Whether ``metric`` regresses by going *up* (latency-like)."""
    name = metric.lower()
    if name.endswith(_HIGHER_SUFFIXES):
        return False
    if name.endswith(_LOWER_SUFFIXES):
        return True
    return True  # durations dominate the bench suite; default pessimistic


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class Regression:
    """One --check finding: a series whose newest point regressed."""

    __slots__ = ("bench", "metric", "value", "baseline", "ratio", "machine")

    def __init__(self, bench: str, metric: str, value: float,
                 baseline: float, ratio: float, machine: str) -> None:
        self.bench = bench
        self.metric = metric
        self.value = value
        self.baseline = baseline
        self.ratio = ratio
        self.machine = machine

    def describe(self) -> str:
        direction = "slower" if lower_is_better(self.metric) else "lower"
        return (
            f"{self.bench}/{self.metric}: {self.value:.6g} vs same-machine "
            f"median {self.baseline:.6g} ({self.ratio:.0%} {direction})"
        )


class Ledger:
    """The append-only bench record file and its trajectory queries."""

    def __init__(self, path: str = DEFAULT_LEDGER) -> None:
        self.path = path

    # -- persistence --------------------------------------------------------

    def load(self) -> List[Record]:
        """All records, oldest first (missing/corrupt file = empty)."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return []
        records = data.get("records") if isinstance(data, dict) else None
        if not isinstance(records, list):
            return []
        clean = [r for r in records if isinstance(r, dict)
                 and "bench" in r and "metric" in r and "value" in r]
        clean.sort(key=lambda r: float(r.get("timestamp", 0.0)))
        return clean

    def append(
        self,
        bench: str,
        metric: str,
        value: float,
        machine: Optional[str] = None,
        git_sha: Optional[str] = None,
        timestamp: Optional[float] = None,
        **extra: Any,
    ) -> Record:
        """Append one record (atomic read-modify-write); returns it."""
        record: Record = {
            "bench": bench,
            "metric": metric,
            "value": float(value),
            "machine": machine if machine is not None else machine_fingerprint(),
            "git_sha": git_sha if git_sha is not None else current_git_sha(
                os.path.dirname(os.path.abspath(self.path)) or None
            ),
            "timestamp": float(timestamp) if timestamp is not None else time.time(),
        }
        record.update(extra)
        records = self.load()
        records.append(record)
        payload = {"schema": LEDGER_SCHEMA, "records": records}
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)
        return record

    # -- trajectory queries -------------------------------------------------

    def series(self) -> Dict[Tuple[str, str], List[Record]]:
        """Records grouped by (bench, metric), oldest first."""
        grouped: Dict[Tuple[str, str], List[Record]] = {}
        for record in self.load():
            key = (str(record["bench"]), str(record["metric"]))
            grouped.setdefault(key, []).append(record)
        return grouped

    def check(
        self, max_regression: float = DEFAULT_MAX_REGRESSION
    ) -> List[Regression]:
        """Regressions of each series' newest point vs its trajectory.

        For every (bench, metric) series the newest record is compared
        against the median of *prior* records sharing its machine
        fingerprint.  Series with no same-machine history pass — a new
        CI runner seeds its own trajectory instead of failing against
        someone else's hardware.
        """
        findings: List[Regression] = []
        for (bench, metric), records in sorted(self.series().items()):
            newest = records[-1]
            machine = str(newest.get("machine", ""))
            prior = [float(r["value"]) for r in records[:-1]
                     if str(r.get("machine", "")) == machine]
            if not prior:
                continue
            baseline = _median(prior)
            value = float(newest["value"])
            if baseline <= 0:
                continue
            if lower_is_better(metric):
                ratio = value / baseline - 1.0
            else:
                ratio = baseline / value - 1.0 if value > 0 else float("inf")
            if ratio > max_regression:
                findings.append(Regression(
                    bench, metric, value, baseline, ratio, machine
                ))
        return findings

    def report(self) -> str:
        """Human-readable trajectory table, one line per series."""
        grouped = self.series()
        if not grouped:
            return f"ledger {self.path}: empty"
        lines = [f"ledger {self.path}: {sum(len(v) for v in grouped.values())}"
                 f" records, {len(grouped)} series"]
        header = f"  {'bench':<28} {'metric':<26} {'n':>3} {'median':>12} {'newest':>12}"
        lines.append(header)
        for (bench, metric), records in sorted(grouped.items()):
            values = [float(r["value"]) for r in records]
            lines.append(
                f"  {bench:<28} {metric:<26} {len(values):>3}"
                f" {_median(values):>12.6g} {values[-1]:>12.6g}"
            )
        return "\n".join(lines)
