"""Nested-span tracing with a near-zero disabled fast path.

A :class:`Span` measures one timed region of code — a steady-state
factorization, a campaign job, a grid assembly — and spans nest: the
tracer keeps a per-thread stack, so a span opened while another is
active becomes its child, and completed top-level spans accumulate as
*roots* ready for export (:mod:`repro.obs.export`).

The design constraint is the hot path.  Solver code calls
:meth:`Tracer.span` on every solve, and tracing is off by default, so
the disabled path must cost one attribute check and return a shared
do-nothing context manager (:data:`NULL_SPAN`) — no allocation, no
clock reads.  The enabled path records wall-clock epoch (for
cross-process alignment in Chrome trace exports) plus a monotonic
duration, and is thread-safe: each thread nests independently and
finished roots are published under a lock.

Spans serialize to plain dicts (:meth:`Span.to_dict`), which is how
campaign worker processes ship their span trees back to the parent
through :class:`~repro.campaign.executor.JobOutcome`.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from types import TracebackType
from typing import Any, Callable, Dict, List, Optional, Type, TypeVar, Union

_F = TypeVar("_F", bound=Callable[..., Any])


class NullSpan:
    """The do-nothing span returned while tracing is disabled.

    A single shared instance (:data:`NULL_SPAN`) serves every call, so
    a disabled ``with tracer.span(...)`` costs a method call and two
    no-op dunder invocations — no allocation, no clock reads.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        """Ignore attributes (tracing is off)."""


#: Shared no-op span; identity-comparable in tests.
NULL_SPAN = NullSpan()


class Span:
    """One timed, attributed, nestable region of execution.

    Acts as its own context manager: entering records the start clocks
    and pushes onto the owning tracer's per-thread stack; exiting pops,
    fixes the duration, marks ``status`` (``"error"`` when an exception
    escaped), and publishes root spans to the tracer.
    """

    __slots__ = (
        "name", "attrs", "t_wall", "duration_s", "pid", "tid",
        "status", "children", "_t0", "_tracer", "_parented",
    )

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.t_wall: float = 0.0
        self.duration_s: float = 0.0
        self.pid: int = os.getpid()
        self.tid: int = threading.get_ident()
        self.status: str = "ok"
        self.children: List["Span"] = []
        self._t0: float = 0.0
        self._tracer = tracer
        self._parented = False

    def __enter__(self) -> "Span":
        self.t_wall = time.time()
        self._t0 = time.perf_counter()
        if self._tracer is not None:
            self._tracer._enter(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._exit(self)
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach or update attributes on a live span."""
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-able, picklable across the pool)."""
        return {
            "name": self.name,
            "t_wall": self.t_wall,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "status": self.status,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        span = cls(str(data.get("name", "?")), dict(data.get("attrs", {})))
        span.t_wall = float(data.get("t_wall", 0.0))
        span.duration_s = float(data.get("duration_s", 0.0))
        span.pid = int(data.get("pid", 0))
        span.tid = int(data.get("tid", 0))
        span.status = str(data.get("status", "ok"))
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span


#: What :meth:`Tracer.span` returns — a real span or the shared no-op.
AnySpan = Union[Span, NullSpan]


class Tracer:
    """Thread-safe collector of nested spans.

    ``enabled`` is a plain attribute so the disabled check is one load;
    per-thread nesting uses ``threading.local`` stacks; completed root
    spans accumulate in ``roots`` (bounded by ``max_roots`` so a
    forgotten enabled tracer cannot grow without limit — overflow is
    counted in ``dropped``).
    """

    def __init__(self, enabled: bool = False, max_roots: int = 100_000) -> None:
        self.enabled = enabled
        self.max_roots = max_roots
        self.dropped = 0
        self._local = threading.local()
        self._roots: List[Span] = []
        self._lock = threading.Lock()

    # -- span creation ------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> AnySpan:
        """A context-managed span, or the shared no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, attrs, tracer=self)

    def trace(self, name: Optional[str] = None, **attrs: Any) -> Callable[[_F], _F]:
        """Decorator form: trace every call of the wrapped function."""

        def decorate(fn: _F) -> _F:
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return fn(*args, **kwargs)
                with Span(label, attrs, tracer=self):
                    return fn(*args, **kwargs)

            return wrapper  # type: ignore[return-value]

        return decorate

    # -- stack bookkeeping (called by Span enter/exit) ----------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _enter(self, span: Span) -> None:
        stack = self._stack()
        span._parented = bool(stack)
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _exit(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mis-nested exit: unwind through it
            del stack[stack.index(span):]
        if not span._parented:
            with self._lock:
                if len(self._roots) < self.max_roots:
                    self._roots.append(span)
                else:
                    self.dropped += 1

    def current(self) -> Optional[Span]:
        """The innermost live span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- root retrieval -----------------------------------------------------

    @property
    def roots(self) -> List[Span]:
        """Completed top-level spans (copy; drain with :meth:`drain`)."""
        with self._lock:
            return list(self._roots)

    def drain(self) -> List[Span]:
        """Return and clear the completed root spans."""
        with self._lock:
            roots, self._roots = self._roots, []
            return roots

    def clear(self) -> None:
        """Drop all completed roots and the dropped-span count."""
        with self._lock:
            self._roots = []
            self.dropped = 0
