"""The span and metric name registry (DESIGN.md §7, machine-readable).

Observability names are dotted paths whose first segment is the owning
subsystem; DESIGN.md §7 documents the full taxonomy.  This module is
the *enforced* copy: instrumentation must register every span and
metric name here, and the ``obs-taxonomy`` static-analysis rule
(:mod:`repro.analysis.static.rules_obs`) flags any string literal used
in a ``span(...)``/``counter(...)``/``histogram(...)``/``gauge(...)``
call that the registry does not know — so a misspelled metric name
fails CI instead of silently splitting a counter in two.

Dynamic names (f-strings) are allowed when they fall under a
registered *prefix*: ``campaign.cache.`` (suffixes are the
:attr:`~repro.campaign.cache.ResultCache.COUNTER_NAMES` op names) and
``solver.backend.`` (per-backend counters keyed by the registered
backend name, e.g. ``solver.backend.superlu-serial.factorizations``).
"""

from __future__ import annotations

from typing import Tuple

#: Every span name the codebase may open (DESIGN.md §7, "Spans").
SPAN_NAMES = frozenset(
    {
        "campaign.run",
        "campaign.cache.probe",
        "campaign.cache.store",
        "campaign.job",
        "rcmodel.grid.assemble",
        "solver.steady.solve",
        "solver.steady.factorize",
        "solver.transient.factorize",
        "solver.transient.simulate",
        "solver.transient.schedule",
        "solver.batched.simulate",
        "solver.batched.schedule",
        "solver.backend.factorize",
        "solver.backend.solve",
        "solver.analytic.kernel",
        "solver.analytic.solve",
        "campaign.batch",
        "campaign.triage",
    }
)

#: Every metric name the codebase may record (DESIGN.md §7, "Metrics").
METRIC_NAMES = frozenset(
    {
        "solver.steady.factorizations",
        "solver.steady.factor_cache_hits",
        "solver.steady.solves",
        "solver.steady.solve_seconds",
        "solver.transient.matrix_builds",
        "solver.transient.steps",
        "solver.batched.runs",
        "solver.batched.scenarios",
        "solver.batched.steps",
        "solver.analytic.kernel_builds",
        "solver.analytic.kernel_cache_hits",
        "solver.analytic.solves",
        "solver.analytic.solve_seconds",
        "campaign.triage.screened",
        "campaign.triage.confirmed",
        "campaign.triage.skipped",
        "campaign.jobs.batched",
        "rcmodel.grid.assemblies",
        "rcmodel.grid.assembly_seconds",
        "campaign.jobs.attempts",
        "campaign.jobs.retries",
        "campaign.jobs.timeouts",
        "campaign.jobs.failures",
        "campaign.job.wall_seconds",
        "campaign.stream.events",
        "obs.events.published",
        "obs.events.dropped",
        "obs.events.heartbeats",
        "obs.sampler.samples",
        "obs.ledger.appends",
    }
)

#: Prefixes under which dynamically-built metric names are legal.
METRIC_PREFIXES: Tuple[str, ...] = ("campaign.cache.", "solver.backend.")


def known_span(name: str) -> bool:
    """Whether ``name`` is a registered span name."""
    return name in SPAN_NAMES


def known_metric(name: str) -> bool:
    """Whether ``name`` is a registered metric name (or prefixed)."""
    return name in METRIC_NAMES or any(
        name.startswith(prefix) for prefix in METRIC_PREFIXES
    )
