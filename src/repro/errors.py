"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(ReproError):
    """A floorplan or layer geometry is inconsistent or degenerate.

    Examples: a block with non-positive width, overlapping blocks when a
    non-overlapping floorplan is required, or a layer whose footprint is
    smaller than the die it must cover.
    """


class FloorplanParseError(ReproError):
    """A HotSpot-format floorplan file could not be parsed."""


class ModelBuildError(ReproError):
    """A thermal RC network could not be assembled from its description."""


class SolverError(ReproError):
    """A steady-state or transient solve failed to produce a solution."""


class ConvectionError(ReproError):
    """A convection correlation was evaluated outside its validity range.

    The flat-plate laminar correlations used for the oil flow (paper
    Eqns 2, 4 and 8) assume ``Re_L`` below the laminar-turbulent
    transition; violating that silently would corrupt every downstream
    temperature, so it is an error instead.
    """


class PowerTraceError(ReproError):
    """A power trace is malformed (wrong shape, negative power, ...)."""


class ConfigurationError(ReproError):
    """A cooling configuration or experiment setup is self-inconsistent."""


class CampaignError(ReproError):
    """A simulation campaign is malformed or failed to execute.

    Examples: an unknown campaign or job-runner name, duplicate job
    tags within one campaign, or a job that exhausted its retries.
    """
